//! The work-stealing parallel executor: fixed task sets (replica indices)
//! spread across scoped worker threads via crossbeam deques.
//!
//! Design constraints, in order:
//! 1. **Determinism** — results are returned indexed by task id, so the
//!    caller's fold sees the same order no matter which worker ran what.
//! 2. **No async runtime** — replicas are pure CPU; scoped threads plus
//!    deques (global [`Injector`], per-worker queue, sibling [`Stealer`]s)
//!    keep all cores busy even when replica costs are skewed (heavily
//!    damaged topologies route slower than intact ones).
//! 3. **Zero `unsafe`** — results land in per-slot `parking_lot` mutexes,
//!    written exactly once each.

use crate::metrics::{Metrics, MetricsSnapshot};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
// analyze:allow(wall_clock): executor telemetry is the one sanctioned wall-clock surface (docs/OBSERVABILITY.md); it never enters a journal
use std::time::Instant;

/// Worker threads to use when the caller passes `threads = 0`.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0), …, f(tasks - 1)` across `threads` workers (0 = all cores)
/// and returns the results in task order. `f` must be pure per task —
/// the assignment of tasks to workers is intentionally racy.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    let threads = threads.min(tasks.max(1));
    if tasks == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return (0..tasks).map(f).collect();
    }

    let injector: Injector<usize> = Injector::new();
    for t in 0..tasks {
        injector.push(t);
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();

    crossbeam::scope(|scope| {
        for (me, local) in locals.iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                while let Some(task) = next_task(local, injector, stealers, me) {
                    *slots[task].lock() = Some(f(task));
                }
            });
        }
    })
    .expect("executor worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran to completion"))
        .collect()
}

/// Runs `f` over every cell of a work list on the work-stealing
/// executor, returning results **in cell order** regardless of which
/// worker ran what — the cell-level task API benchmark sweeps (and any
/// caller with a heterogeneous work list) build on. `f` must be pure per
/// cell; `threads = 0` uses all cores.
///
/// ```
/// use shc_runtime::map_cells;
///
/// let dims = [8u32, 10, 12, 14];
/// let squares = map_cells(&dims, 0, |&n| u64::from(n) * u64::from(n));
/// assert_eq!(squares, vec![64, 100, 144, 196]);
/// ```
pub fn map_cells<I, T, F>(cells: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(cells.len(), threads, |i| f(&cells[i]))
}

/// Splits `0..total` into one contiguous chunk per worker state and runs
/// `f(&mut states[i], chunk_i)` on scoped threads — the **intra-cell**
/// task-splitting primitive the batched admission propose phase rides on
/// (cell-level fan-out keeps using [`run_indexed`]'s work stealing).
///
/// Unlike [`run_indexed`] each worker owns a mutable state for its whole
/// chunk (per-thread search scratch), and chunks are **contiguous and
/// deterministic**: worker `i` gets `[i·⌈total/w⌉, (i+1)·⌈total/w⌉)`
/// clamped to `total`, where `w = min(states.len(), total)`. Results come
/// back in chunk order, so a caller that concatenates them sees items in
/// index order no matter how many workers ran — with pure-per-item `f`,
/// output is worker-count-invariant by construction.
///
/// With one state (or one item) everything runs inline on the caller's
/// thread — no scope, no spawn — which keeps the `states.len() == 1`
/// configuration byte-identical to never having called an executor.
///
/// # Panics
/// Panics if `states` is empty, or propagates a worker panic.
pub fn run_chunked<S, R, F>(total: usize, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(&mut S, std::ops::Range<usize>) -> R + Sync,
{
    assert!(!states.is_empty(), "run_chunked needs a worker state");
    let workers = states.len().min(total.max(1));
    if workers <= 1 {
        return vec![f(&mut states[0], 0..total)];
    }
    let chunk = total.div_ceil(workers);
    let f = &f;
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (i, state) in states[..workers].iter_mut().enumerate() {
            let lo = (i * chunk).min(total);
            let hi = ((i + 1) * chunk).min(total);
            handles.push(scope.spawn(move |_| f(state, lo..hi)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    })
    .expect("executor worker panicked")
}

/// Per-worker wall-clock counters from one [`run_indexed_timed`] call.
///
/// **Wall-clock side**: unlike results (and trace journals), these
/// numbers depend on the OS scheduler and are **not** deterministic —
/// they exist for utilization reporting and must never feed a
/// deterministic artifact projection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker completed.
    pub tasks_run: u64,
    /// Tasks obtained by stealing from a sibling's deque.
    pub steals: u64,
    /// Batches grabbed from the global injector.
    pub injector_batches: u64,
    /// Wall time this worker spent inside task bodies, in microseconds.
    pub busy_micros: u64,
}

/// Wall-clock telemetry from one [`run_indexed_timed`] call: where
/// executor time went, per worker and per task. See [`WorkerStats`] for
/// the determinism caveat.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutorTelemetry {
    /// Worker threads that ran.
    pub threads: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// End-to-end wall time of the call, in microseconds.
    pub wall_micros: u64,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Per-task wall time in **task order** (not completion order).
    pub task_micros: Vec<u64>,
}

impl ExecutorTelemetry {
    /// Sum of per-worker busy time — the numerator of utilization.
    #[must_use]
    pub fn busy_micros(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_micros).sum()
    }

    /// Busy time over `threads × wall` — 1.0 means every worker was
    /// inside a task body for the whole call.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let denom = self.wall_micros.saturating_mul(self.threads as u64);
        if denom == 0 {
            0.0
        } else {
            self.busy_micros() as f64 / denom as f64
        }
    }

    /// Folds the telemetry through the [`Metrics`] façade into a
    /// utilization report: steal/batch counters, thread/task gauges, and
    /// per-task + per-worker-busy wall-time histograms (microseconds,
    /// saturating at ~4.19 s). Wall-clock side — keep it out of
    /// deterministic artifact projections.
    #[must_use]
    pub fn utilization_report(&self) -> MetricsSnapshot {
        const CAP_US: u64 = 1 << 22;
        let mut m = Metrics::new();
        let tasks = m.counter("executor_tasks_total");
        let steals = m.counter("executor_steals_total");
        let batches = m.counter("executor_injector_batches_total");
        let threads = m.gauge("executor_threads");
        let wall = m.gauge("executor_wall_micros");
        let busy = m.gauge("executor_busy_micros");
        let per_task = m.histogram("executor_task_micros", "us", CAP_US);
        let per_worker = m.histogram("executor_worker_busy_micros", "us", CAP_US);
        m.add(tasks, self.tasks as u64);
        for w in &self.workers {
            m.add(steals, w.steals);
            m.add(batches, w.injector_batches);
            m.record(per_worker, w.busy_micros);
        }
        m.set(threads, i64::try_from(self.threads).unwrap_or(i64::MAX));
        m.set(wall, i64::try_from(self.wall_micros).unwrap_or(i64::MAX));
        m.set(busy, i64::try_from(self.busy_micros()).unwrap_or(i64::MAX));
        for &t in &self.task_micros {
            m.record(per_task, t);
        }
        m.snapshot()
    }
}

/// [`run_indexed`] plus wall-clock telemetry: identical results (task
/// order, one run per task), with per-worker steal/busy counters and
/// per-task wall times on the side. The timing adds one `Instant` pair
/// per task, so prefer plain [`run_indexed`] for micro-tasks where that
/// overhead could register.
pub fn run_indexed_timed<T, F>(tasks: usize, threads: usize, f: F) -> (Vec<T>, ExecutorTelemetry)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // analyze:allow(wall_clock): run_indexed_timed telemetry, segregated from deterministic output
    let started = Instant::now();
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    let threads = threads.min(tasks.max(1));
    if tasks == 0 {
        return (Vec::new(), ExecutorTelemetry::default());
    }
    if threads <= 1 {
        let mut task_micros = Vec::with_capacity(tasks);
        let results = (0..tasks)
            .map(|t| {
                // analyze:allow(wall_clock): per-task wall time for utilization reports
                let t0 = Instant::now();
                let r = f(t);
                task_micros.push(elapsed_micros(t0));
                r
            })
            .collect();
        let busy: u64 = task_micros.iter().sum();
        let telemetry = ExecutorTelemetry {
            threads: 1,
            tasks,
            wall_micros: elapsed_micros(started),
            workers: vec![WorkerStats {
                tasks_run: tasks as u64,
                steals: 0,
                injector_batches: 0,
                busy_micros: busy,
            }],
            task_micros,
        };
        return (results, telemetry);
    }

    let injector: Injector<usize> = Injector::new();
    for t in 0..tasks {
        injector.push(t);
    }
    let slots: Vec<Mutex<Option<(T, u64)>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
    let worker_slots: Vec<Mutex<WorkerStats>> = (0..threads)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();

    crossbeam::scope(|scope| {
        for (me, local) in locals.iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let worker_slots = &worker_slots;
            let f = &f;
            scope.spawn(move |_| {
                let mut stats = WorkerStats::default();
                while let Some((task, source)) = next_task_traced(local, injector, stealers, me) {
                    match source {
                        TaskSource::Local => {}
                        TaskSource::Injector => stats.injector_batches += 1,
                        TaskSource::Stolen => stats.steals += 1,
                    }
                    // analyze:allow(wall_clock): per-task wall time for utilization reports
                    let t0 = Instant::now();
                    let r = f(task);
                    let micros = elapsed_micros(t0);
                    stats.tasks_run += 1;
                    stats.busy_micros += micros;
                    *slots[task].lock() = Some((r, micros));
                }
                *worker_slots[me].lock() = stats;
            });
        }
    })
    .expect("executor worker panicked");

    let mut task_micros = Vec::with_capacity(tasks);
    let results = slots
        .into_iter()
        .map(|slot| {
            let (r, micros) = slot.into_inner().expect("every task ran to completion");
            task_micros.push(micros);
            r
        })
        .collect();
    let telemetry = ExecutorTelemetry {
        threads,
        tasks,
        wall_micros: elapsed_micros(started),
        workers: worker_slots.into_iter().map(Mutex::into_inner).collect(),
        task_micros,
    };
    (results, telemetry)
}

fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Where [`next_task_traced`] found a task (telemetry attribution).
enum TaskSource {
    Local,
    Injector,
    Stolen,
}

/// [`next_task`] with source attribution for the telemetry path.
fn next_task_traced(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    me: usize,
) -> Option<(usize, TaskSource)> {
    if let Some(task) = local.pop() {
        return Some((task, TaskSource::Local));
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some((task, TaskSource::Injector)),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    for (other, stealer) in stealers.iter().enumerate() {
        if other == me {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some((task, TaskSource::Stolen)),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
    }
    None
}

/// Pop local work, else grab a batch from the global injector, else steal
/// from a sibling; `None` when everything is drained.
fn next_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    me: usize,
) -> Option<usize> {
    next_task_traced(local, injector, stealers, me).map(|(task, _)| task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let out = run_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_zero_threads() {
        assert!(run_indexed(0, 0, |i| i).is_empty());
        // threads = 0 resolves to all cores and still completes.
        assert_eq!(run_indexed(5, 0, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_thread_path_matches_parallel_path() {
        let seq = run_indexed(64, 1, |i| (i * 31) % 17);
        let par = run_indexed(64, 8, |i| (i * 31) % 17);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let out = run_indexed(500, 6, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn skewed_task_costs_still_complete() {
        // Tail-heavy costs force actual stealing between workers.
        let out = run_indexed(64, 4, |i| {
            let spin = if i % 16 == 0 { 200_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, x| acc.wrapping_add(x))
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn timed_results_match_untimed_and_account_every_task() {
        let (out, telemetry) = run_indexed_timed(80, 4, |i| i * 3);
        assert_eq!(out, run_indexed(80, 4, |i| i * 3));
        assert_eq!(telemetry.tasks, 80);
        assert_eq!(telemetry.task_micros.len(), 80);
        assert_eq!(telemetry.threads, 4);
        assert_eq!(telemetry.workers.len(), 4);
        let run: u64 = telemetry.workers.iter().map(|w| w.tasks_run).sum();
        assert_eq!(run, 80, "every task attributed to exactly one worker");
        assert!(telemetry.busy_micros() <= telemetry.wall_micros * 4 + 4);
    }

    #[test]
    fn timed_sequential_path_reports_one_worker() {
        let (out, telemetry) = run_indexed_timed(10, 1, |i| i);
        assert_eq!(out.len(), 10);
        assert_eq!(telemetry.threads, 1);
        assert_eq!(telemetry.workers.len(), 1);
        assert_eq!(telemetry.workers[0].tasks_run, 10);
        assert_eq!(telemetry.workers[0].steals, 0);
        let (empty, t0) = run_indexed_timed(0, 4, |i| i);
        assert!(empty.is_empty());
        assert_eq!(t0.tasks, 0);
    }

    #[test]
    fn utilization_report_folds_through_the_metrics_facade() {
        let (_, telemetry) = run_indexed_timed(32, 2, |i| {
            (0..2_000).fold(i as u64, |acc, x| acc.wrapping_add(x))
        });
        let report = telemetry.utilization_report();
        let tasks = report
            .counters
            .iter()
            .find(|c| c.name == "executor_tasks_total")
            .expect("tasks counter");
        assert_eq!(tasks.value, 32);
        let per_task = report
            .histograms
            .iter()
            .find(|h| h.name == "executor_task_micros")
            .expect("per-task histogram");
        assert_eq!(per_task.summary.count, 32);
        assert!(report.gauges.iter().any(|g| g.name == "executor_threads"));
        // Truncation of the per-task micros can nudge the ratio a hair
        // past 1.0 on very short runs; it must stay in that ballpark.
        let u = telemetry.utilization();
        assert!((0.0..=1.5).contains(&u), "utilization {u} out of range");
    }

    #[test]
    fn map_cells_preserves_cell_order() {
        let cells: Vec<String> = (0..40).map(|i| format!("cell-{i}")).collect();
        let seq = map_cells(&cells, 1, |c| c.len());
        let par = map_cells(&cells, 4, |c| c.len());
        assert_eq!(seq, par);
        assert_eq!(seq[0], 6);
        assert_eq!(map_cells::<String, usize, _>(&[], 4, |c| c.len()), vec![]);
    }
}
