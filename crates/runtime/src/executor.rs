//! The work-stealing parallel executor: fixed task sets (replica indices)
//! spread across scoped worker threads via crossbeam deques.
//!
//! Design constraints, in order:
//! 1. **Determinism** — results are returned indexed by task id, so the
//!    caller's fold sees the same order no matter which worker ran what.
//! 2. **No async runtime** — replicas are pure CPU; scoped threads plus
//!    deques (global [`Injector`], per-worker queue, sibling [`Stealer`]s)
//!    keep all cores busy even when replica costs are skewed (heavily
//!    damaged topologies route slower than intact ones).
//! 3. **Zero `unsafe`** — results land in per-slot `parking_lot` mutexes,
//!    written exactly once each.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

/// Worker threads to use when the caller passes `threads = 0`.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0), …, f(tasks - 1)` across `threads` workers (0 = all cores)
/// and returns the results in task order. `f` must be pure per task —
/// the assignment of tasks to workers is intentionally racy.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    let threads = threads.min(tasks.max(1));
    if tasks == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return (0..tasks).map(f).collect();
    }

    let injector: Injector<usize> = Injector::new();
    for t in 0..tasks {
        injector.push(t);
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();

    crossbeam::scope(|scope| {
        for (me, local) in locals.iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                while let Some(task) = next_task(local, injector, stealers, me) {
                    *slots[task].lock() = Some(f(task));
                }
            });
        }
    })
    .expect("executor worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran to completion"))
        .collect()
}

/// Runs `f` over every cell of a work list on the work-stealing
/// executor, returning results **in cell order** regardless of which
/// worker ran what — the cell-level task API benchmark sweeps (and any
/// caller with a heterogeneous work list) build on. `f` must be pure per
/// cell; `threads = 0` uses all cores.
///
/// ```
/// use shc_runtime::map_cells;
///
/// let dims = [8u32, 10, 12, 14];
/// let squares = map_cells(&dims, 0, |&n| u64::from(n) * u64::from(n));
/// assert_eq!(squares, vec![64, 100, 144, 196]);
/// ```
pub fn map_cells<I, T, F>(cells: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(cells.len(), threads, |i| f(&cells[i]))
}

/// Pop local work, else grab a batch from the global injector, else steal
/// from a sibling; `None` when everything is drained.
fn next_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    me: usize,
) -> Option<usize> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    for (other, stealer) in stealers.iter().enumerate() {
        if other == me {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let out = run_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_zero_threads() {
        assert!(run_indexed(0, 0, |i| i).is_empty());
        // threads = 0 resolves to all cores and still completes.
        assert_eq!(run_indexed(5, 0, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_thread_path_matches_parallel_path() {
        let seq = run_indexed(64, 1, |i| (i * 31) % 17);
        let par = run_indexed(64, 8, |i| (i * 31) % 17);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let out = run_indexed(500, 6, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn skewed_task_costs_still_complete() {
        // Tail-heavy costs force actual stealing between workers.
        let out = run_indexed(64, 4, |i| {
            let spin = if i % 16 == 0 { 200_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, x| acc.wrapping_add(x))
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn map_cells_preserves_cell_order() {
        let cells: Vec<String> = (0..40).map(|i| format!("cell-{i}")).collect();
        let seq = map_cells(&cells, 1, |c| c.len());
        let par = map_cells(&cells, 4, |c| c.len());
        assert_eq!(seq, par);
        assert_eq!(seq[0], 6);
        assert_eq!(map_cells::<String, usize, _>(&[], 4, |c| c.len()), vec![]);
    }
}
