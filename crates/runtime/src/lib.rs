//! # shc-runtime — parallel scenario execution with fault injection
//!
//! The crate between `shc-netsim` (one engine, one run) and `shc-bench`
//! (tables): it executes **scenarios** — declarative combinations of a
//! topology, a broadcast/traffic workload, an originator sweep, a fault
//! model, and a Monte Carlo replication count — across all cores on a
//! work-stealing executor, then folds per-replica [`SimStats`]-level
//! counters into distribution summaries serialized as JSON.
//!
//! * [`scenario`] — the declarative spec types and topology builder.
//! * [`faults`] — per-replica fault draws ([`FaultPlan`]) applied as
//!   `shc-netsim` [`FaultedNet`](shc_netsim::FaultedNet) overlays.
//! * [`executor`] — crossbeam-deque work stealing over scoped threads.
//! * [`runner`] — replica bodies, the Monte Carlo loop, report folding.
//! * [`aggregate`] — integer-exact distribution summaries.
//! * [`catalog`] — the built-in scenario catalog behind `exp_scenarios`.
//! * [`metrics`] — zero-dependency counters / gauges / fixed-bucket
//!   histograms with integer-exact percentiles and a JSON snapshot.
//! * [`service`] — the long-lived flow service layer: open-loop arrivals,
//!   holding times, admission policies, windowed reports (`exp_serve`).
//! * [`trace`] — the deterministic structured-event journal
//!   ([`TraceJournal`]): per-decision admission/flow/fault events stamped
//!   with simulated time only, a JSONL exporter, and the
//!   [`trace::audit`] invariant checker that replays a journal.
//!
//! Determinism is a hard invariant: replica `r` runs on the `r`-th split
//! of the scenario seed and the fold is order-exact over integers, so a
//! report — including its JSON bytes — is identical for 1 or N worker
//! threads. `tests/runtime_determinism.rs` (tier 1) pins this.
//!
//! ## Example
//!
//! Declare a scenario, execute it on 2 worker threads, and observe the
//! determinism contract:
//!
//! ```
//! use shc_runtime::{run_scenario, Scenario, TopologySpec, Workload};
//!
//! let scenario = Scenario::new(
//!     "doc",
//!     TopologySpec::SparseBase { n: 5, m: 2 },
//!     Workload::Broadcast { competing: 1 },
//! )
//! .replications(4)
//! .seed(7);
//! let report = run_scenario(&scenario, 2);
//! assert_eq!(report.total_blocked, 0); // lossless without faults
//! assert_eq!(report, run_scenario(&scenario, 1)); // any worker count
//! ```
//!
//! [`SimStats`]: shc_netsim::SimStats

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod batch;
pub mod catalog;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod trace;

pub use aggregate::MetricSummary;
pub use batch::{BatchAdmitter, BatchRoundReport};
pub use catalog::builtin_catalog;
pub use executor::{
    available_threads, map_cells, run_chunked, run_indexed, run_indexed_timed, ExecutorTelemetry,
    WorkerStats,
};
pub use faults::FaultPlan;
pub use metrics::{
    BucketCount, CounterId, GaugeId, Histogram, HistogramId, Metrics, MetricsSnapshot,
};
pub use runner::{
    run_scenario, run_scenario_intra, run_scenario_traced, run_scenario_traced_intra, MetricRow,
    ReplicaOutcome, ScenarioReport,
};
pub use scenario::{
    BuiltTopology, DilationShift, FaultSpec, OriginatorPolicy, Scenario, TopologyKind,
    TopologySpec, Workload,
};
pub use service::{
    builtin_service_catalog, run_service, run_service_intra, run_service_probed,
    run_service_probed_intra, run_service_traced, run_service_traced_intra, AdmissionPolicy,
    ArrivalSpec, ChurnSpec, ClosedLoopSpec, DiurnalCurve, FailoverPolicy, HoldingSpec,
    PopularitySpec, QosSpec, ServiceReport, ServiceSpec, WindowRow,
};
pub use trace::{RoundEndInfo, RunProbe, TraceEvent, TraceJournal, TraceRecord};
