//! Sampling a [`FaultSpec`] into a concrete
//! per-replica [`FaultPlan`]: which links die, which nodes crash, all
//! drawn from the replica's private deterministic stream.

use crate::scenario::{FaultSpec, Vertex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use shc_netsim::{FaultedNet, NetTopology};

/// The concrete damage one replica runs under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Failed links (normalized `u < v`).
    pub dead_links: Vec<(Vertex, Vertex)>,
    /// Crashed vertices.
    pub crashed: Vec<Vertex>,
}

impl FaultPlan {
    /// Draws a plan from `spec` over a topology given as its
    /// pre-enumerated edge list (see [`enumerate_edges`] — enumerate once
    /// per scenario, not per replica) and vertex count. Vertices in
    /// `protect` (originators, hot-spot targets) are never crashed, so
    /// the traffic the scenario is *about* always has live endpoints.
    #[must_use]
    pub fn sample(
        spec: &FaultSpec,
        edges: &[(Vertex, Vertex)],
        num_vertices: u64,
        protect: &[Vertex],
        rng: &mut StdRng,
    ) -> Self {
        let mut plan = FaultPlan::default();
        if spec.link_failures > 0 {
            let mut edges = edges.to_vec();
            let (dead, _) = edges.partial_shuffle(rng, spec.link_failures);
            plan.dead_links = dead.to_vec();
        }
        if spec.node_crashes > 0 {
            let mut candidates: Vec<Vertex> =
                (0..num_vertices).filter(|v| !protect.contains(v)).collect();
            let (crashed, _) = candidates.partial_shuffle(rng, spec.node_crashes);
            plan.crashed = crashed.to_vec();
        }
        plan
    }

    /// [`sample`](Self::sample) with the edge enumeration done inline —
    /// convenient for one-off draws outside the replica loop.
    #[must_use]
    pub fn sample_from_topology<T: NetTopology>(
        spec: &FaultSpec,
        topo: &T,
        protect: &[Vertex],
        rng: &mut StdRng,
    ) -> Self {
        Self::sample(
            spec,
            &enumerate_edges(topo),
            topo.num_vertices(),
            protect,
            rng,
        )
    }

    /// Applies the plan as a [`FaultedNet`] overlay on `base`.
    #[must_use]
    pub fn overlay<'a, T: NetTopology>(&self, base: &'a T) -> FaultedNet<'a, T> {
        FaultedNet::new(
            base,
            self.dead_links.iter().copied(),
            self.crashed.iter().copied(),
        )
    }
}

/// All undirected edges of `topo`, normalized and in deterministic
/// (vertex-major, native neighbor order) order — the walk works
/// identically over frozen-table and implicit (rule-generated) link
/// substrates, and yields the same sequence a frozen table would.
/// Links a damage overlay masks out (`link_blocked`) are excluded, so
/// sampling a second fault wave over an already-damaged topology never
/// draws an already-dead link.
#[must_use]
pub fn enumerate_edges<T: NetTopology>(topo: &T) -> Vec<(Vertex, Vertex)> {
    let mut edges = Vec::new();
    for u in 0..topo.num_vertices() {
        topo.for_each_link(u, |v, id| {
            if v > u && !topo.link_blocked(id) {
                edges.push((u, v));
            }
            true
        });
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shc_graph::builders::cycle;
    use shc_netsim::MaterializedNet;

    #[test]
    fn edge_enumeration_is_deterministic() {
        let net = MaterializedNet::new(cycle(5));
        let e1 = enumerate_edges(&net);
        let e2 = enumerate_edges(&net);
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), 5);
        assert!(e1.contains(&(0, 4)));
    }

    #[test]
    fn edge_enumeration_excludes_overlay_damage() {
        use shc_netsim::FaultedNet;
        let net = MaterializedNet::new(cycle(6));
        let damaged = FaultedNet::new(&net, [(0u64, 1u64)], [3u64]);
        let edges = enumerate_edges(&damaged);
        // 6 edges minus the failed link and vertex 3's two incident ones.
        assert_eq!(edges.len(), 3);
        assert!(!edges.contains(&(0, 1)));
        assert!(!edges.contains(&(2, 3)));
        assert!(!edges.contains(&(3, 4)));
    }

    #[test]
    fn sampling_respects_counts_and_protection() {
        let net = MaterializedNet::new(cycle(8));
        let spec = FaultSpec {
            link_failures: 3,
            node_crashes: 2,
            dilation_shift: None,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let plan = FaultPlan::sample_from_topology(&spec, &net, &[0, 1], &mut rng);
        assert_eq!(plan.dead_links.len(), 3);
        assert_eq!(plan.crashed.len(), 2);
        assert!(!plan.crashed.contains(&0) && !plan.crashed.contains(&1));
        for &(u, v) in &plan.dead_links {
            assert!(u < v, "normalized");
            assert!(net.has_edge(u, v), "only real edges fail");
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let net = MaterializedNet::new(cycle(12));
        let spec = FaultSpec {
            link_failures: 4,
            node_crashes: 3,
            dilation_shift: None,
        };
        let p1 = FaultPlan::sample_from_topology(&spec, &net, &[], &mut StdRng::seed_from_u64(5));
        let p2 = FaultPlan::sample_from_topology(&spec, &net, &[], &mut StdRng::seed_from_u64(5));
        assert_eq!(p1, p2);
    }

    #[test]
    fn counts_saturate_at_capacity() {
        let net = MaterializedNet::new(cycle(4));
        let spec = FaultSpec {
            link_failures: 100,
            node_crashes: 100,
            dilation_shift: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let plan = FaultPlan::sample_from_topology(&spec, &net, &[0], &mut rng);
        assert_eq!(plan.dead_links.len(), 4, "cycle(4) has 4 edges");
        assert_eq!(plan.crashed.len(), 3, "vertex 0 protected");
    }

    #[test]
    fn overlay_applies_all_damage() {
        let net = MaterializedNet::new(cycle(6));
        let plan = FaultPlan {
            dead_links: vec![(0, 1)],
            crashed: vec![3],
        };
        let damaged = plan.overlay(&net);
        assert!(!damaged.has_edge(0, 1));
        assert!(damaged.neighbors(3).is_empty());
        assert_eq!(damaged.num_dead_links(), 1);
        assert_eq!(damaged.num_crashed(), 1);
    }
}
