//! Scenario execution: replica bodies, the Monte Carlo loop over the
//! work-stealing executor, and the fold into a [`ScenarioReport`].
//!
//! Determinism contract: replica `r` derives everything (originator,
//! co-sources, fault draw, traffic) from the `r`-th split of the
//! scenario's base seed, and the fold consumes integer outcomes in
//! replica order — so a report is bit-identical across worker counts.

use crate::aggregate::MetricSummary;
use crate::batch::BatchAdmitter;
use crate::executor;
use crate::faults::FaultPlan;
use crate::scenario::{BuiltTopology, OriginatorPolicy, Scenario, Vertex, Workload};
use crate::trace::{RoundEndInfo, RunProbe, TraceJournal};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use shc_broadcast::{replay_degraded, Schedule};
use shc_netsim::{replay_competing_probed, BatchRequest, Engine, NetTopology, NoProbe};
use std::collections::BTreeSet;

/// Integer counters from one replica. Everything downstream (summaries,
/// rates) folds these, so replicas never touch floats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaOutcome {
    /// Replica index.
    pub replica: usize,
    /// Primary originator (broadcast workloads; 0 otherwise).
    pub originator: Vertex,
    /// Rounds simulated.
    pub rounds: u64,
    /// Circuits established.
    pub established: u64,
    /// Circuits blocked.
    pub blocked: u64,
    /// Total hops across established circuits.
    pub total_hops: u64,
    /// Peak per-link occupancy.
    pub peak_link_load: u64,
    /// Vertices informed by the primary broadcast (its source included);
    /// for adaptive workloads, the number of established circuits.
    pub informed: u64,
    /// Primary-broadcast calls severed by dead links.
    pub severed_calls: u64,
    /// Primary-broadcast calls voided by uninformed callers.
    pub voided_calls: u64,
    /// Links failed by the fault draw.
    pub dead_links: u64,
    /// Vertices crashed by the fault draw.
    pub crashed_nodes: u64,
}

/// One named metric's distribution in a report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Metric name (a [`ReplicaOutcome`] field).
    pub metric: String,
    /// Its distribution across replicas.
    pub summary: MetricSummary,
}

/// Aggregated result of a scenario run. Identical (including its JSON
/// rendering) for any worker-thread count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Topology label (`G_{n,m}` / `Q_n`).
    pub topology: String,
    /// Workload label.
    pub workload: String,
    /// Replications executed.
    pub replications: usize,
    /// Base seed.
    pub seed: u64,
    /// Link dilation the run started with.
    pub dilation: u32,
    /// Vertices in the topology.
    pub num_vertices: u64,
    /// Total circuits established across replicas.
    pub total_established: u64,
    /// Total circuits blocked across replicas.
    pub total_blocked: u64,
    /// `blocked / (blocked + established)` over all replicas.
    pub blocking_rate: f64,
    /// Mean informed fraction of the primary broadcast (1.0 when every
    /// replica's broadcast fully lands; adaptive workloads report the
    /// established-circuit count over vertices).
    pub mean_informed_fraction: f64,
    /// Per-metric distribution summaries, in fixed metric order.
    pub metrics: Vec<MetricRow>,
}

impl ScenarioReport {
    /// Looks up a metric summary by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics
            .iter()
            .find(|row| row.metric == name)
            .map(|row| &row.summary)
    }
}

/// Runs a scenario on `threads` workers (0 = all cores) and folds the
/// replicas into a report.
#[must_use]
pub fn run_scenario(scenario: &Scenario, threads: usize) -> ScenarioReport {
    run_scenario_intra(scenario, threads, 1)
}

/// [`run_scenario`] with `intra` propose workers inside each replica's
/// batched rounds (only meaningful for [`Scenario::batch`] scenarios —
/// serial admission ignores it). The report is byte-identical for any
/// `(threads, intra)` combination: replicas split across `threads`, and
/// batched rounds split their propose phase across `intra`, but every
/// committed outcome is ordered by request sequence number alone.
#[must_use]
pub fn run_scenario_intra(scenario: &Scenario, threads: usize, intra: usize) -> ScenarioReport {
    let topo = scenario.topology.build();
    fold_report(
        scenario,
        &topo,
        &run_replica_outcomes(scenario, &topo, threads, intra),
    )
}

/// Runs every replica of `scenario` against a pre-built topology and
/// returns the raw outcomes in replica order (the cross-check hook for
/// the legacy single-thread experiment paths). `intra` is the per-round
/// propose worker count for batched scenarios.
#[must_use]
pub fn run_replica_outcomes(
    scenario: &Scenario,
    topo: &BuiltTopology,
    threads: usize,
    intra: usize,
) -> Vec<ReplicaOutcome> {
    // Pre-split one stream per replica up front (sequential, cheap) so
    // replica streams are independent of executor scheduling.
    let mut base = StdRng::seed_from_u64(scenario.seed);
    let rngs: Vec<StdRng> = (0..scenario.replications).map(|_| base.split()).collect();
    // The edge list is a pure function of the topology: enumerate it once
    // and share it, instead of re-scanning O(V·deg) inside every replica.
    let edges = if scenario.faults.link_failures > 0 {
        crate::faults::enumerate_edges(topo)
    } else {
        Vec::new()
    };
    executor::run_indexed(scenario.replications, threads, |r| {
        run_replica(scenario, topo, &edges, r, rngs[r].clone(), NoProbe, intra).0
    })
}

/// [`run_scenario`] with a deterministic trace attached: every replica
/// runs with its own [`TraceJournal`] probe (`cell` = replica index,
/// ring capacity `capacity` events per replica). Returns the report —
/// byte-identical to an untraced run — together with the journals in
/// replica order. Journals depend only on the scenario spec, never on
/// `threads`; see `docs/OBSERVABILITY.md`.
///
/// # Panics
/// Panics when `capacity == 0` or the replica count overflows the
/// journal's `u32` cell id.
#[must_use]
pub fn run_scenario_traced(
    scenario: &Scenario,
    threads: usize,
    capacity: usize,
) -> (ScenarioReport, Vec<TraceJournal>) {
    run_scenario_traced_intra(scenario, threads, capacity, 1)
}

/// [`run_scenario_traced`] with `intra` propose workers inside each
/// replica's batched rounds. Journals — including batch-conflict events,
/// which are stamped in commit order — are byte-identical for any
/// `(threads, intra)` combination.
///
/// # Panics
/// Panics as [`run_scenario_traced`].
#[must_use]
pub fn run_scenario_traced_intra(
    scenario: &Scenario,
    threads: usize,
    capacity: usize,
    intra: usize,
) -> (ScenarioReport, Vec<TraceJournal>) {
    let topo = scenario.topology.build();
    let mut base = StdRng::seed_from_u64(scenario.seed);
    let rngs: Vec<StdRng> = (0..scenario.replications).map(|_| base.split()).collect();
    let edges = if scenario.faults.link_failures > 0 {
        crate::faults::enumerate_edges(&topo)
    } else {
        Vec::new()
    };
    let results = executor::run_indexed(scenario.replications, threads, |r| {
        let journal = TraceJournal::new(u32::try_from(r).expect("replica fits u32"), capacity);
        run_replica(scenario, &topo, &edges, r, rngs[r].clone(), journal, intra)
    });
    let (outcomes, journals): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    (fold_report(scenario, &topo, &outcomes), journals)
}

/// Replays the fault draw into the probe before the engine runs, so a
/// trace explains *why* later calls sever (dead link) or void (crashed
/// caller). Plan order is the sample order — deterministic per seed.
fn emit_fault_plan<P: RunProbe>(probe: &mut P, plan: &FaultPlan) {
    if P::ENABLED {
        for &(u, v) in &plan.dead_links {
            probe.on_fault_link(u, v);
        }
        for &v in &plan.crashed {
            probe.on_fault_node(v);
        }
    }
}

/// Admits one round's worth of requests: through the propose-then-commit
/// batch pipeline when an admitter is handed in, serially otherwise. The
/// request list is identical either way, so the two modes consume the
/// same RNG draws.
fn drive_requests<T, P>(
    sim: &mut Engine<'_, T, P>,
    admitter: Option<&mut BatchAdmitter>,
    reqs: &[BatchRequest],
) where
    T: NetTopology + Sync,
    P: RunProbe + Sync,
{
    match admitter {
        Some(adm) => {
            let _ = adm.admit_round(sim, reqs);
        }
        None => {
            for r in reqs {
                let _ = sim.request(r.src, r.dst, r.max_len);
            }
        }
    }
}

/// Executes one replica with an attached probe. With [`NoProbe`] every
/// instrumentation branch compiles out. `intra` is the propose worker
/// count for batched rounds (serial admission ignores it).
fn run_replica<P: RunProbe + Sync>(
    scenario: &Scenario,
    topo: &BuiltTopology,
    edges: &[(Vertex, Vertex)],
    replica: usize,
    mut rng: StdRng,
    mut probe: P,
    intra: usize,
) -> (ReplicaOutcome, P) {
    let n = topo.num_vertices();
    let originator = match scenario.originators {
        OriginatorPolicy::Fixed(v) => v,
        OriginatorPolicy::Sweep => replica as u64 % n,
        OriginatorPolicy::Random => rng.gen_range(0..n),
    };
    let mut outcome = ReplicaOutcome {
        replica,
        originator,
        ..ReplicaOutcome::default()
    };

    match scenario.workload {
        Workload::Broadcast { competing } => {
            assert!(competing >= 1, "need at least the primary broadcast");
            // Primary source first; co-sources are distinct random draws.
            let mut sources = vec![originator];
            let mut seen: BTreeSet<Vertex> = BTreeSet::from([originator]);
            while sources.len() < competing.min(n as usize) {
                let s = rng.gen_range(0..n);
                if seen.insert(s) {
                    sources.push(s);
                }
            }
            let plan = FaultPlan::sample(&scenario.faults, edges, n, &sources, &mut rng);
            emit_fault_plan(&mut probe, &plan);
            let net = plan.overlay(topo);
            let schedules: Vec<Schedule> = sources.iter().map(|&s| topo.schedule(s)).collect();
            // Shares `replay_competing`'s admission semantics exactly —
            // the hook only adds the mid-run dilation shift (and, when
            // traced, closes the previous round in the journal; the
            // final round is closed after the replay returns).
            let (stats, p) =
                replay_competing_probed(&net, &schedules, scenario.dilation, probe, |t, sim| {
                    if P::ENABLED && t > 0 {
                        emit_round_end(sim, 0);
                    }
                    apply_dilation_shift(scenario, sim, t);
                });
            probe = p;
            if P::ENABLED && stats.rounds > 0 {
                probe.on_round_end(&RoundEndInfo::default());
            }
            record_stats(&mut outcome, stats);

            // Information accounting for the primary broadcast: which
            // vertices actually hear, once severed calls cascade.
            let degrade = replay_degraded(&schedules[0], |u, v| net.link_alive(u, v));
            outcome.informed = degrade.informed.len() as u64;
            outcome.severed_calls = degrade.severed_calls as u64;
            outcome.voided_calls = degrade.voided_calls as u64;
            outcome.dead_links = plan.dead_links.len() as u64;
            outcome.crashed_nodes = plan.crashed.len() as u64;
        }
        Workload::HotSpot {
            target,
            senders,
            max_len,
        } => {
            assert!(target < n, "hot-spot target out of range");
            let plan = FaultPlan::sample(&scenario.faults, edges, n, &[target], &mut rng);
            emit_fault_plan(&mut probe, &plan);
            let net = plan.overlay(topo);
            let mut pool: Vec<Vertex> = (0..n)
                .filter(|&v| v != target && !plan.crashed.contains(&v))
                .collect();
            let (chosen, _) = pool.partial_shuffle(&mut rng, senders);
            let reqs: Vec<BatchRequest> = chosen
                .iter()
                .map(|&src| BatchRequest {
                    src,
                    dst: target,
                    max_len,
                })
                .collect();
            let mut admitter = scenario.batch.then(|| BatchAdmitter::new(n, intra));
            let mut sim = Engine::with_probe(&net, scenario.dilation, probe);
            apply_dilation_shift(scenario, &mut sim, 0);
            sim.begin_round();
            drive_requests(&mut sim, admitter.as_mut(), &reqs);
            if P::ENABLED {
                emit_round_end(&mut sim, 0);
            }
            let (stats, p) = sim.finish_with_probe();
            probe = p;
            record_stats(&mut outcome, stats);
            outcome.informed = outcome.established;
            outcome.dead_links = plan.dead_links.len() as u64;
            outcome.crashed_nodes = plan.crashed.len() as u64;
        }
        Workload::Permutation {
            rounds,
            pairs,
            max_len,
        } => {
            let plan = FaultPlan::sample(&scenario.faults, edges, n, &[], &mut rng);
            emit_fault_plan(&mut probe, &plan);
            let net = plan.overlay(topo);
            let alive: Vec<Vertex> = (0..n).filter(|v| !plan.crashed.contains(v)).collect();
            let mut admitter = scenario.batch.then(|| BatchAdmitter::new(n, intra));
            let mut sim = Engine::with_probe(&net, scenario.dilation, probe);
            for t in 0..rounds {
                apply_dilation_shift(scenario, &mut sim, t);
                sim.begin_round();
                // Fewer than two live vertices ⇒ no drawable pair; the
                // rounds still tick so the metric stays meaningful.
                let mut reqs = Vec::with_capacity(pairs);
                if alive.len() >= 2 {
                    for _ in 0..pairs {
                        let src = alive[rng.gen_range(0..alive.len())];
                        let dst = alive[rng.gen_range(0..alive.len())];
                        if src != dst {
                            reqs.push(BatchRequest { src, dst, max_len });
                        }
                    }
                }
                drive_requests(&mut sim, admitter.as_mut(), &reqs);
                if P::ENABLED {
                    emit_round_end(&mut sim, 0);
                }
            }
            let (stats, p) = sim.finish_with_probe();
            probe = p;
            record_stats(&mut outcome, stats);
            outcome.informed = outcome.established;
            outcome.dead_links = plan.dead_links.len() as u64;
            outcome.crashed_nodes = plan.crashed.len() as u64;
        }
        Workload::BitReversal { rounds, max_len } | Workload::Transpose { rounds, max_len } => {
            assert!(
                n.is_power_of_two(),
                "adversarial permutations address vertices by n-bit index"
            );
            let bits = n.trailing_zeros();
            let dst_of = |v: Vertex| -> Vertex {
                match scenario.workload {
                    Workload::BitReversal { .. } => v.reverse_bits() >> (64 - bits),
                    _ => {
                        // Rotate the n-bit index by floor(n/2) bits.
                        let h = bits / 2;
                        if h == 0 {
                            v
                        } else {
                            ((v << h) | (v >> (bits - h))) & (n - 1)
                        }
                    }
                }
            };
            let plan = FaultPlan::sample(&scenario.faults, edges, n, &[], &mut rng);
            emit_fault_plan(&mut probe, &plan);
            let net = plan.overlay(topo);
            // The full permutation, fixed points skipped — no RNG at all.
            let reqs: Vec<BatchRequest> = (0..n)
                .filter_map(|src| {
                    let dst = if bits == 0 { src } else { dst_of(src) };
                    (dst != src).then_some(BatchRequest { src, dst, max_len })
                })
                .collect();
            let mut admitter = scenario.batch.then(|| BatchAdmitter::new(n, intra));
            let mut sim = Engine::with_probe(&net, scenario.dilation, probe);
            for t in 0..rounds {
                apply_dilation_shift(scenario, &mut sim, t);
                sim.begin_round();
                drive_requests(&mut sim, admitter.as_mut(), &reqs);
                if P::ENABLED {
                    emit_round_end(&mut sim, 0);
                }
            }
            let (stats, p) = sim.finish_with_probe();
            probe = p;
            record_stats(&mut outcome, stats);
            outcome.informed = outcome.established;
            outcome.dead_links = plan.dead_links.len() as u64;
            outcome.crashed_nodes = plan.crashed.len() as u64;
        }
    }
    (outcome, probe)
}

/// Closes the engine's current round in the journal: scenario workloads
/// hold no cross-round flows, so the gauges come straight from the
/// engine (all zero unless a flow workload is added later) plus the
/// driver-side queue depth.
fn emit_round_end<T: NetTopology, P: RunProbe>(sim: &mut Engine<'_, T, P>, queue_depth: u64) {
    let info = RoundEndInfo {
        active_flows: sim.active_flows() as u64,
        held_link_hops: sim.held_link_hops(),
        queue_depth,
    };
    // analyze:allow(probe_ungated): helper invoked from gated sites only — every caller checks `P::ENABLED` first
    sim.probe_mut().on_round_end(&info);
}

fn apply_dilation_shift<T: NetTopology, P: RunProbe>(
    scenario: &Scenario,
    sim: &mut Engine<'_, T, P>,
    round: usize,
) {
    if let Some(shift) = scenario.faults.dilation_shift {
        if shift.at_round == round {
            sim.set_dilation(shift.dilation);
            if P::ENABLED {
                sim.probe_mut().on_dilation_shift(shift.dilation);
            }
        }
    }
}

fn record_stats(outcome: &mut ReplicaOutcome, stats: shc_netsim::SimStats) {
    outcome.rounds = stats.rounds as u64;
    outcome.established = stats.established as u64;
    outcome.blocked = stats.blocked as u64;
    outcome.total_hops = stats.total_hops as u64;
    outcome.peak_link_load = u64::from(stats.peak_link_load);
}

/// Pulls one integer metric out of a replica outcome.
type MetricExtractor = fn(&ReplicaOutcome) -> u64;

/// The metrics a report summarizes, with their per-replica extractors.
/// Fixed order keeps report JSON stable.
const METRICS: &[(&str, MetricExtractor)] = &[
    ("rounds", |o| o.rounds),
    ("established", |o| o.established),
    ("blocked", |o| o.blocked),
    ("total_hops", |o| o.total_hops),
    ("peak_link_load", |o| o.peak_link_load),
    ("informed", |o| o.informed),
    ("severed_calls", |o| o.severed_calls),
    ("voided_calls", |o| o.voided_calls),
    ("dead_links", |o| o.dead_links),
    ("crashed_nodes", |o| o.crashed_nodes),
];

/// Folds replica outcomes into the aggregate report.
#[must_use]
pub fn fold_report(
    scenario: &Scenario,
    topo: &BuiltTopology,
    outcomes: &[ReplicaOutcome],
) -> ScenarioReport {
    let n = topo.num_vertices();
    let total_established: u64 = outcomes.iter().map(|o| o.established).sum();
    let total_blocked: u64 = outcomes.iter().map(|o| o.blocked).sum();
    let total_calls = total_established + total_blocked;
    let informed_sum: u128 = outcomes.iter().map(|o| u128::from(o.informed)).sum();
    let metrics = METRICS
        .iter()
        .map(|&(name, extract)| {
            let mut samples: Vec<u64> = outcomes.iter().map(extract).collect();
            MetricRow {
                metric: name.to_string(),
                summary: MetricSummary::from_samples(&mut samples),
            }
        })
        .collect();
    ScenarioReport {
        scenario: scenario.name.clone(),
        topology: scenario.topology.label(),
        workload: scenario.workload.label(),
        replications: outcomes.len(),
        seed: scenario.seed,
        dilation: scenario.dilation,
        num_vertices: n,
        total_established,
        total_blocked,
        blocking_rate: if total_calls == 0 {
            0.0
        } else {
            total_blocked as f64 / total_calls as f64
        },
        mean_informed_fraction: if outcomes.is_empty() || n == 0 {
            0.0
        } else {
            informed_sum as f64 / (outcomes.len() as u128 * u128::from(n)) as f64
        },
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DilationShift, FaultSpec, TopologySpec};

    fn base_scenario() -> Scenario {
        Scenario::new(
            "unit",
            TopologySpec::SparseBase { n: 6, m: 3 },
            Workload::Broadcast { competing: 1 },
        )
        .replications(8)
        .seed(42)
    }

    #[test]
    fn undamaged_broadcast_is_lossless_everywhere() {
        let report = run_scenario(&base_scenario().originators(OriginatorPolicy::Sweep), 2);
        assert_eq!(report.total_blocked, 0);
        assert_eq!(report.blocking_rate, 0.0);
        assert!((report.mean_informed_fraction - 1.0).abs() < 1e-12);
        let rounds = report.metric("rounds").unwrap();
        assert_eq!((rounds.min, rounds.max), (6, 6), "minimum time everywhere");
        assert_eq!(report.metric("severed_calls").unwrap().max, 0);
    }

    #[test]
    fn same_seed_same_report_across_thread_counts() {
        let scenario = base_scenario()
            .originators(OriginatorPolicy::Random)
            .faults(FaultSpec {
                link_failures: 5,
                node_crashes: 2,
                dilation_shift: None,
            })
            .replications(24);
        let r1 = run_scenario(&scenario, 1);
        let r4 = run_scenario(&scenario, 4);
        assert_eq!(r1, r4);
        assert_eq!(
            serde_json::to_string_pretty(&r1).unwrap(),
            serde_json::to_string_pretty(&r4).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let damaged = base_scenario()
            .faults(FaultSpec {
                link_failures: 8,
                node_crashes: 0,
                dilation_shift: None,
            })
            .replications(16);
        let a = run_scenario(&damaged.clone().seed(1), 2);
        let b = run_scenario(&damaged.seed(2), 2);
        assert_ne!(a, b, "independent fault draws");
    }

    #[test]
    fn link_failures_reduce_informed_fraction() {
        let intact = run_scenario(&base_scenario().replications(16), 2);
        let damaged = run_scenario(
            &base_scenario()
                .faults(FaultSpec {
                    link_failures: 20,
                    node_crashes: 0,
                    dilation_shift: None,
                })
                .replications(16),
            2,
        );
        assert!(damaged.mean_informed_fraction < intact.mean_informed_fraction);
        assert!(damaged.metric("severed_calls").unwrap().max > 0);
        assert_eq!(damaged.metric("dead_links").unwrap().min, 20);
    }

    #[test]
    fn competing_broadcasts_contend_and_dilation_heals() {
        let congested = Scenario::new(
            "congest",
            TopologySpec::SparseBase { n: 7, m: 3 },
            Workload::Broadcast { competing: 4 },
        )
        .replications(8)
        .seed(3);
        let d1 = run_scenario(&congested, 2);
        let d4 = run_scenario(&congested.clone().dilation(4), 2);
        assert!(d1.total_blocked > 0, "4 broadcasts on dilation-1 links");
        assert!(d4.total_blocked < d1.total_blocked);
    }

    #[test]
    fn hot_spot_saturates_target_links() {
        let scenario = Scenario::new(
            "hot",
            TopologySpec::Hypercube { n: 5 },
            Workload::HotSpot {
                target: 0,
                senders: 31,
                max_len: 5,
            },
        )
        .replications(4)
        .seed(7);
        let report = run_scenario(&scenario, 2);
        // Q_5's target has 5 links: at most 5 circuits land per round.
        assert_eq!(report.metric("established").unwrap().max, 5);
        assert!(report.total_blocked > 0);
    }

    #[test]
    fn permutation_with_dilation_shift_runs() {
        let scenario = Scenario::new(
            "perm",
            TopologySpec::Hypercube { n: 4 },
            Workload::Permutation {
                rounds: 6,
                pairs: 12,
                max_len: 6,
            },
        )
        .faults(FaultSpec {
            link_failures: 0,
            node_crashes: 0,
            dilation_shift: Some(DilationShift {
                at_round: 3,
                dilation: 4,
            }),
        })
        .replications(6)
        .seed(11);
        let report = run_scenario(&scenario, 3);
        assert_eq!(report.metric("rounds").unwrap().max, 6);
        assert!(report.total_established > 0);
        // Same-seed determinism holds with the mid-run shift too.
        assert_eq!(report, run_scenario(&scenario, 1));
    }

    #[test]
    fn traced_scenarios_match_untraced_and_audit_clean() {
        // One scenario per workload arm, all with faults and a mid-run
        // dilation shift so every event variant can fire.
        let scenarios = [
            base_scenario()
                .faults(FaultSpec {
                    link_failures: 4,
                    node_crashes: 1,
                    dilation_shift: Some(DilationShift {
                        at_round: 2,
                        dilation: 3,
                    }),
                })
                .replications(6),
            Scenario::new(
                "hot",
                TopologySpec::Hypercube { n: 4 },
                Workload::HotSpot {
                    target: 0,
                    senders: 15,
                    max_len: 4,
                },
            )
            .replications(4)
            .seed(5),
            Scenario::new(
                "perm",
                TopologySpec::Hypercube { n: 4 },
                Workload::Permutation {
                    rounds: 5,
                    pairs: 10,
                    max_len: 6,
                },
            )
            .replications(4)
            .seed(9),
        ];
        for scenario in scenarios {
            let plain = run_scenario(&scenario, 2);
            let (traced, journals) = run_scenario_traced(&scenario, 2, 1 << 16);
            // Attaching probes must not perturb the simulation.
            assert_eq!(plain, traced, "{}", scenario.name);
            assert_eq!(journals.len(), scenario.replications);
            let audit = crate::trace::audit::audit_journals(&journals)
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert_eq!(
                audit.established, traced.total_established,
                "{}: every established circuit is journaled",
                scenario.name
            );
            assert_eq!(audit.blocked, traced.total_blocked, "{}", scenario.name);
        }
    }

    #[test]
    fn trace_journals_are_identical_across_thread_counts() {
        let scenario = base_scenario()
            .originators(OriginatorPolicy::Random)
            .faults(FaultSpec {
                link_failures: 5,
                node_crashes: 2,
                dilation_shift: None,
            })
            .replications(12);
        let (r1, j1) = run_scenario_traced(&scenario, 1, 1 << 16);
        let (r4, j4) = run_scenario_traced(&scenario, 4, 1 << 16);
        assert_eq!(r1, r4);
        let render = |js: &[crate::trace::TraceJournal]| {
            let mut out = String::new();
            for j in js {
                j.render_jsonl_into(&mut out);
            }
            out
        };
        assert_eq!(render(&j1), render(&j4));
        // Fault draws actually reached the journals.
        assert!(j1.iter().any(|j| j
            .records()
            .any(|r| matches!(r.event, crate::trace::TraceEvent::FaultLink { .. }))));
    }

    #[test]
    fn fold_handles_zero_replicas() {
        let scenario = base_scenario().replications(0);
        let report = run_scenario(&scenario, 2);
        assert_eq!(report.replications, 0);
        assert_eq!(report.blocking_rate, 0.0);
        assert_eq!(report.mean_informed_fraction, 0.0);
    }
}
