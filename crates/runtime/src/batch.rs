//! The wave driver for propose-then-commit batched admission.
//!
//! [`BatchAdmitter`] owns a pool of per-worker
//! [`SearchScratch`](shc_netsim::SearchScratch) and drives one round's
//! request batch through the engine's
//! [`propose`](shc_netsim::Engine::propose) /
//! [`commit_proposal`](shc_netsim::Engine::commit_proposal) seam:
//!
//! 1. **Propose** — the pending requests are split into contiguous
//!    chunks, one per scratch, and routed concurrently against the
//!    committed state via [`executor::run_chunked`](crate::executor::run_chunked).
//!    Each proposal is a pure function of `(committed state, request)`,
//!    so the proposal vector is identical for any worker count.
//! 2. **Commit** — proposals are applied serially in request sequence
//!    order. Established and finally-blocked requests conclude (stats +
//!    probe events identical to serial admission); conflicted requests
//!    stay pending and re-propose against the updated committed state
//!    in the next wave.
//!
//! Waves repeat to fixed-point. Within a wave commits run in sequence
//! order, so the lowest-sequenced pending request always proposes
//! against exactly the state its commit sees — it concludes, never
//! conflicts — which bounds the wave count by the batch size.
//!
//! Every committed outcome, statistic, and probe event is a function of
//! the request sequence order alone, never of the propose-phase thread
//! schedule: reports **and byte-exact trace journals** are invariant
//! under `intra` (the worker count). `intra = 1` routes every request
//! inline with no executor involvement at all.

use crate::executor::run_chunked;
use shc_netsim::batch::{BatchOutcome, BatchRequest, CommitOutcome, FlowCommitOutcome, Proposal};
use shc_netsim::{Engine, EngineProbe, FlowOutcome, NetTopology, SearchScratch};

/// Outcome summary of one batched round — final per-request outcomes in
/// request order, plus conflict/wave telemetry (deterministic: both are
/// functions of the request sequence, not the thread schedule).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchRoundReport {
    /// Final outcome per request, in request order.
    pub outcomes: Vec<BatchOutcome>,
    /// Commit-phase capacity conflicts across all waves (each conflicted
    /// request re-proposed and concluded in a later wave).
    pub conflicts: u64,
    /// Propose/commit waves run (1 when the round was conflict-free).
    pub waves: u32,
}

/// Reusable batched-admission driver: a scratch pool sized for `intra`
/// propose workers over a topology with a fixed vertex count. Create
/// one per replica and reuse it across rounds — the scratch allocates
/// once and is epoch-stamped, exactly like the serial engine's.
pub struct BatchAdmitter {
    scratch: Vec<SearchScratch>,
}

impl BatchAdmitter {
    /// Creates a pool of `max(intra, 1)` per-worker scratches for a
    /// topology with `num_vertices` vertices (as reported by
    /// [`Engine::num_vertices`](shc_netsim::Engine::num_vertices)).
    #[must_use]
    pub fn new(num_vertices: u64, intra: usize) -> Self {
        let workers = intra.max(1);
        Self {
            scratch: (0..workers).map(|_| SearchScratch::new(num_vertices)).collect(),
        }
    }

    /// Propose workers this admitter routes with.
    #[must_use]
    pub fn intra(&self) -> usize {
        self.scratch.len()
    }

    /// Admits one round's request batch to fixed-point and returns the
    /// final outcome per request (in request order) plus conflict/wave
    /// telemetry. Stats and probe events land on the engine exactly as
    /// serial admission would order them for the same commit sequence.
    ///
    /// # Panics
    /// Panics if called outside a round, or on an invalid request
    /// (self-circuit, endpoint out of range — as
    /// [`Engine::request`](shc_netsim::Engine::request)).
    pub fn admit_round<T, P>(
        &mut self,
        sim: &mut Engine<'_, T, P>,
        reqs: &[BatchRequest],
    ) -> BatchRoundReport
    where
        T: NetTopology + Sync,
        P: EngineProbe + Sync,
    {
        let mut outcomes: Vec<Option<BatchOutcome>> = vec![None; reqs.len()];
        let mut conflicts = 0u64;
        let mut waves = 0u32;
        self.run_waves(sim, reqs, |sim, wave, seq, prop| {
            waves = waves.max(wave + 1);
            match sim.commit_proposal(wave, prop) {
                CommitOutcome::Established { hops } => {
                    outcomes[seq] = Some(BatchOutcome::Established { hops });
                    true
                }
                CommitOutcome::Blocked(reason) => {
                    outcomes[seq] = Some(BatchOutcome::Blocked(reason));
                    true
                }
                CommitOutcome::Conflict => {
                    conflicts += 1;
                    false
                }
            }
        });
        BatchRoundReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every request concluded"))
                .collect(),
            conflicts,
            waves,
        }
    }

    /// [`admit_round`](Self::admit_round) for **flow** batches: an
    /// established commit holds its links across rounds and the outcome
    /// carries the flow handle. Returns final [`FlowOutcome`]s in
    /// request order plus the conflict count.
    ///
    /// # Panics
    /// Panics as [`admit_round`](Self::admit_round).
    pub fn admit_round_flows<T, P>(
        &mut self,
        sim: &mut Engine<'_, T, P>,
        reqs: &[BatchRequest],
    ) -> (Vec<FlowOutcome>, u64)
    where
        T: NetTopology + Sync,
        P: EngineProbe + Sync,
    {
        let mut outcomes: Vec<Option<FlowOutcome>> = vec![None; reqs.len()];
        let mut conflicts = 0u64;
        self.run_waves(sim, reqs, |sim, wave, seq, prop| {
            match sim.commit_proposal_flow(wave, prop) {
                FlowCommitOutcome::Established { flow, hops } => {
                    outcomes[seq] = Some(FlowOutcome::Established { flow, hops });
                    true
                }
                FlowCommitOutcome::Blocked(reason) => {
                    outcomes[seq] = Some(FlowOutcome::Blocked(reason));
                    true
                }
                FlowCommitOutcome::Conflict => {
                    conflicts += 1;
                    false
                }
            }
        });
        (
            outcomes
                .into_iter()
                .map(|o| o.expect("every request concluded"))
                .collect(),
            conflicts,
        )
    }

    /// The wave loop shared by the circuit and flow drivers: propose the
    /// pending set in parallel chunks, commit serially in sequence
    /// order, keep the conflicted survivors pending, repeat. `commit`
    /// returns `true` when the request concluded.
    fn run_waves<'a, T, P>(
        &mut self,
        sim: &mut Engine<'a, T, P>,
        reqs: &[BatchRequest],
        mut commit: impl FnMut(&mut Engine<'a, T, P>, u32, usize, &Proposal) -> bool,
    ) where
        T: NetTopology + Sync,
        P: EngineProbe + Sync,
    {
        let mut pending: Vec<usize> = (0..reqs.len()).collect();
        let mut wave = 0u32;
        while !pending.is_empty() {
            // Propose phase: pure routing against the committed state.
            // Small waves (including every re-route wave in practice)
            // run inline — proposals are partition-invariant, so this
            // changes nothing but the thread count.
            let proposals: Vec<Proposal> =
                if self.scratch.len() <= 1 || pending.len() < 2 * self.scratch.len() {
                    let scratch = &mut self.scratch[0];
                    pending
                        .iter()
                        .map(|&seq| sim.propose(scratch, &reqs[seq]))
                        .collect()
                } else {
                    let sim = &*sim;
                    let pending = &pending;
                    run_chunked(pending.len(), &mut self.scratch, |scratch, range| {
                        range
                            .map(|i| sim.propose(scratch, &reqs[pending[i]]))
                            .collect::<Vec<Proposal>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()
                };
            // Commit phase: serial, in request sequence order.
            let mut next_pending = Vec::new();
            for (&seq, prop) in pending.iter().zip(&proposals) {
                if !commit(sim, wave, seq, prop) {
                    next_pending.push(seq);
                }
            }
            debug_assert!(
                next_pending.len() < pending.len(),
                "every wave concludes at least its lowest-sequenced request"
            );
            pending = next_pending;
            wave += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shc_graph::builders::hypercube;
    use shc_netsim::MaterializedNet;

    /// Batch admission of a conflict-free batch matches serial requests
    /// one-for-one, at any intra worker count.
    #[test]
    fn conflict_free_batch_matches_serial() {
        let net = MaterializedNet::new(hypercube(4));
        // Link-disjoint single-hop pairs: (0,1), (2,3), ..., (14,15).
        let reqs: Vec<BatchRequest> = (0u64..8)
            .map(|v| BatchRequest {
                src: 2 * v,
                dst: 2 * v + 1,
                max_len: 4,
            })
            .collect();
        let mut serial = Engine::new(&net, 4);
        serial.begin_round();
        let serial_outcomes: Vec<bool> = reqs
            .iter()
            .map(|r| serial.request(r.src, r.dst, r.max_len).is_established())
            .collect();
        let serial_stats = serial.finish();

        for intra in [1usize, 4] {
            let mut sim = Engine::new(&net, 4);
            sim.begin_round();
            let mut admitter = BatchAdmitter::new(sim.num_vertices(), intra);
            let report = admitter.admit_round(&mut sim, &reqs);
            let batch_outcomes: Vec<bool> =
                report.outcomes.iter().map(BatchOutcome::is_established).collect();
            assert_eq!(batch_outcomes, serial_outcomes, "intra={intra}");
            assert_eq!(sim.finish(), serial_stats, "intra={intra}");
            assert_eq!(report.conflicts, 0);
            assert_eq!(report.waves, 1);
        }
    }

    /// A saturating batch forces conflicts; outcomes stay identical at
    /// every intra worker count, and waves terminate.
    #[test]
    fn contended_batch_is_intra_invariant() {
        let net = MaterializedNet::new(hypercube(3));
        // Everyone wants to reach vertex 0: heavy link contention.
        let reqs: Vec<BatchRequest> = (1u64..8)
            .map(|v| BatchRequest {
                src: v,
                dst: 0,
                max_len: 6,
            })
            .collect();
        let run = |intra: usize| {
            let mut sim = Engine::new(&net, 1);
            sim.begin_round();
            let mut admitter = BatchAdmitter::new(sim.num_vertices(), intra);
            let report = admitter.admit_round(&mut sim, &reqs);
            (report, sim.finish())
        };
        let (r1, s1) = run(1);
        let (r4, s4) = run(4);
        assert_eq!(r1, r4);
        assert_eq!(s1, s4);
        assert_eq!(
            s1.established + s1.blocked,
            reqs.len(),
            "every request concluded exactly once"
        );
    }
}
