//! Long-lived flow service: open-loop arrivals, holding times, admission
//! control, and windowed service-level reports over a live engine.
//!
//! Everything before this module is **memoryless** — each round's
//! circuits vanish at the next [`begin_round`]. A service, by contrast,
//! carries *sessions*: circuits admitted in one round stay up for a
//! holding time measured in rounds, new sessions arrive open-loop (the
//! offered load does not slow down because the network is full), and
//! operators choose what happens to arrivals the network cannot route —
//! reject them, queue them with a timeout, or degrade them onto longer
//! detour routes. This module is that layer:
//!
//! * [`ServiceSpec`] — the declarative cell: topology × arrival process
//!   ([`ArrivalSpec`], optionally diurnal) × holding time
//!   ([`HoldingSpec`]) × destination popularity ([`PopularitySpec`]) ×
//!   admission policy ([`AdmissionPolicy`]).
//! * [`run_service`] — the simulation loop: drives
//!   [`Engine::request_flow`] / [`Engine::release_flow`] over simulated
//!   rounds, records every event into the [`metrics`](crate::metrics)
//!   façade, and folds per-window [`WindowRow`]s plus a final cumulative
//!   snapshot into a [`ServiceReport`].
//! * [`builtin_service_catalog`] — the cells behind `exp_serve`.
//!
//! # Determinism contract
//!
//! A cell is simulated **sequentially** from a single [`StdRng`] seeded
//! with `spec.seed`; parallelism (in `exp_serve`) is across independent
//! cells via [`map_cells`](crate::executor::map_cells), which returns
//! results in cell order. A [`ServiceReport`] — including its JSON bytes
//! — is therefore identical for 1 or N worker threads, the same contract
//! `tests/runtime_determinism.rs` pins for scenario reports.
//!
//! # Per-round event order
//!
//! The loop body is the determinism-relevant part of the spec. Round `t`
//! processes, in order: (1) [`begin_round`] (transients torn down, held
//! flows keep their links); (2) dynamic churn when a [`ChurnSpec`] is
//! set — repairs due at `t` first, then fresh link failures drawn from
//! the cell's dedicated fault stream, each failure tearing down or
//! rerouting the flows holding the link per [`FailoverPolicy`]; (3)
//! departures scheduled for `t`, in admission order (handles invalidated
//! by a teardown/preemption are skipped); (4) queued arrivals retried
//! FIFO — timeouts counted as rejections, still-blocked entries
//! re-queued in order; (5) closed-loop sources whose think/backoff timer
//! expired at `t` (in source order), then fresh Poisson arrivals, each
//! drawing a QoS tier (when a [`QosSpec`] is set), a destination
//! (popularity law), and a uniform source ≠ destination, admitted /
//! queued / detoured / rejected per the policy — a blocked **priority**
//! arrival may first preempt best-effort flows, oldest first; (6)
//! end-of-round gauge + occupancy/blocking samples.
//!
//! The fault stream is a *separate* RNG derived from `spec.seed`, so a
//! cell with `churn: None` and one with a zero-rate [`ChurnSpec`] draw
//! identical traffic and produce byte-identical reports — the
//! metamorphic baseline `crates/runtime/tests/metamorphic.rs` pins.
//!
//! [`begin_round`]: shc_netsim::Engine::begin_round
//! [`Engine::request_flow`]: shc_netsim::Engine::request_flow
//! [`Engine::release_flow`]: shc_netsim::Engine::release_flow
//!
//! ## Example
//!
//! ```
//! use shc_runtime::service::{run_service, AdmissionPolicy, ServiceSpec};
//! use shc_runtime::TopologySpec;
//!
//! let spec = ServiceSpec::new("doc", TopologySpec::Hypercube { n: 3 })
//!     .policy(AdmissionPolicy::QueueWithTimeout {
//!         max_wait_rounds: 4,
//!         capacity: 32,
//!     })
//!     .rounds(40)
//!     .window_rounds(20)
//!     .seed(11);
//! let report = run_service(&spec);
//! assert_eq!(report.windows.len(), 2);
//! // Conservation: every arrival is admitted, rejected, or still queued.
//! let c = |name: &str| {
//!     report.totals.counters.iter().find(|c| c.name == name).unwrap().value
//! };
//! let last = report.windows.last().unwrap();
//! assert_eq!(
//!     c("flow_arrivals_total"),
//!     c("flow_admitted_total") + c("flow_rejected_total") + last.queue_depth_end
//! );
//! assert_eq!(report, run_service(&spec)); // same seed ⇒ same report
//! ```

use crate::aggregate::MetricSummary;
use crate::batch::BatchAdmitter;
use crate::metrics::{CounterId, GaugeId, Histogram, HistogramId, Metrics, MetricsSnapshot};
use crate::scenario::{TopologySpec, Vertex};
use crate::trace::{RoundEndInfo, RunProbe, TraceJournal};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use shc_netsim::{BatchRequest, Engine, FlowId, FlowOutcome, NetTopology, NoProbe, RerouteOutcome};
use std::collections::VecDeque;

/// Open-loop arrival process: a Poisson round rate, optionally modulated
/// by a sinusoidal [`DiurnalCurve`]. Open-loop means the offered load is
/// independent of network state — blocked arrivals do not throttle the
/// source, which is what makes admission control interesting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrivalSpec {
    /// Mean arrivals per round (λ of the per-round Poisson draw).
    pub rate_per_round: f64,
    /// Optional diurnal modulation of the rate.
    pub diurnal: Option<DiurnalCurve>,
}

impl ArrivalSpec {
    /// A flat Poisson process at `rate_per_round`.
    #[must_use]
    pub fn poisson(rate_per_round: f64) -> Self {
        Self {
            rate_per_round,
            diurnal: None,
        }
    }

    /// Adds a diurnal curve to this arrival process.
    #[must_use]
    pub fn with_diurnal(mut self, curve: DiurnalCurve) -> Self {
        self.diurnal = Some(curve);
        self
    }

    /// The effective Poisson rate at `round`:
    /// `rate · (1 + amplitude · sin(2π · round / period))`, floored at 0.
    ///
    /// ```
    /// use shc_runtime::service::{ArrivalSpec, DiurnalCurve};
    ///
    /// let flat = ArrivalSpec::poisson(8.0);
    /// assert_eq!(flat.rate_at(17), 8.0);
    /// let tide = flat.with_diurnal(DiurnalCurve {
    ///     amplitude: 0.5,
    ///     period_rounds: 100,
    /// });
    /// assert_eq!(tide.rate_at(0), 8.0); // phase 0: baseline
    /// assert!(tide.rate_at(25) > 11.9); // peak: 8 · 1.5
    /// assert!(tide.rate_at(75) < 4.1); // trough: 8 · 0.5
    /// ```
    #[must_use]
    pub fn rate_at(&self, round: usize) -> f64 {
        match self.diurnal {
            None => self.rate_per_round,
            Some(DiurnalCurve {
                amplitude,
                period_rounds,
            }) => {
                let period = f64::from(period_rounds);
                let phase =
                    2.0 * std::f64::consts::PI * ((round as u64 % u64::from(period_rounds)) as f64)
                        / period;
                (self.rate_per_round * amplitude.mul_add(phase.sin(), 1.0)).max(0.0)
            }
        }
    }
}

/// Sinusoidal load modulation — the service-layer stand-in for a daily
/// traffic cycle, in simulated rounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiurnalCurve {
    /// Peak-to-baseline swing in `[0, 1]`: rate varies by `±amplitude`
    /// around the base rate.
    pub amplitude: f64,
    /// Rounds per full cycle.
    pub period_rounds: u32,
}

/// How long an admitted flow holds its circuit, in rounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HoldingSpec {
    /// Geometric holding time on `{1, 2, …}` with the given mean — the
    /// discrete memoryless law (round-sampled exponential).
    Geometric {
        /// Mean holding time in rounds (≥ 1).
        mean_rounds: f64,
    },
    /// Flows never depart (pure accumulation — the zero-churn regime).
    Infinite,
}

/// Which destinations arrivals ask for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PopularitySpec {
    /// Every vertex equally likely.
    Uniform,
    /// Zipf popularity: vertex `v` drawn with weight `(v + 1)^-exponent`
    /// — vertex 0 is the hottest destination, producing the sustained
    /// hot-spot contention the paper's §5 asks about.
    Zipf {
        /// Skew exponent (0 = uniform; ~1 = classic web-like skew).
        exponent: f64,
    },
}

/// What to do with an arrival the engine cannot route right now.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionPolicy {
    /// Drop blocked arrivals immediately (pure loss system).
    Reject,
    /// Park blocked arrivals in a bounded FIFO queue and retry them at
    /// the start of each following round; entries time out after waiting
    /// more than `max_wait_rounds` rounds, and arrivals beyond
    /// `capacity` overflow — both count as rejections.
    QueueWithTimeout {
        /// Longest tolerated wait, in rounds.
        max_wait_rounds: u32,
        /// Queue slots (arrivals beyond this overflow).
        capacity: usize,
    },
    /// Retry blocked arrivals once with a relaxed length budget
    /// (`max_len + extra_hops`) — admit a longer detour route rather
    /// than dropping the session.
    DegradeToDetour {
        /// Extra hops allowed on the degraded attempt.
        extra_hops: u32,
    },
}

impl AdmissionPolicy {
    /// Short human-readable label (`reject` / `queue(w=8,c=64)` /
    /// `detour(+2)`), used in report rows and artifact names.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Reject => "reject".to_string(),
            AdmissionPolicy::QueueWithTimeout {
                max_wait_rounds,
                capacity,
            } => format!("queue(w={max_wait_rounds},c={capacity})"),
            AdmissionPolicy::DegradeToDetour { extra_hops } => format!("detour(+{extra_hops})"),
        }
    }
}

/// What happens to the flows holding a link when it fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Tear the affected circuits down; the sessions are lost.
    Teardown,
    /// Try to re-place each affected circuit around the damage (same
    /// endpoints, same length budget); circuits that cannot be re-placed
    /// are torn down.
    Reroute,
}

/// Dynamic link churn: links fail *under* live flows and (optionally)
/// heal after a deterministic MTTR. All randomness rides a dedicated
/// fault stream derived from the cell seed, so traffic draws are
/// unchanged by the presence (or rate) of churn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Mean link failures per round (λ of a per-round Poisson draw).
    /// Each failure picks a uniformly random currently-live link.
    pub fail_rate_per_round: f64,
    /// Mean rounds until a failed link heals (geometric MTTR law);
    /// `0` = links never heal (permanent damage).
    pub mttr_mean_rounds: f64,
    /// What happens to the flows holding a failed link.
    pub on_fail: FailoverPolicy,
}

/// Two-tier QoS admission: each fresh open-loop arrival is drawn
/// priority with probability `priority_share`; a blocked priority
/// arrival may evict best-effort flows (oldest first) before giving up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QosSpec {
    /// Probability in `[0, 1]` that a fresh arrival is priority-tier.
    pub priority_share: f64,
    /// Most best-effort flows one priority arrival may preempt.
    pub max_preemptions: u32,
}

/// Closed-loop sources riding next to the open-loop Poisson arrivals:
/// each source holds one session at a time, thinks between sessions, and
/// retries blocked attempts with bounded exponential backoff — the load
/// *does* slow down when the network pushes back, unlike the open-loop
/// stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClosedLoopSpec {
    /// Number of sources.
    pub sources: u32,
    /// Mean think time between a departure and the next attempt
    /// (geometric, rounds).
    pub think_mean_rounds: f64,
    /// Backoff after the first blocked attempt, in rounds (doubles per
    /// consecutive failure).
    pub backoff_base_rounds: u32,
    /// Backoff ceiling, in rounds.
    pub backoff_cap_rounds: u32,
}

/// One service cell: everything [`run_service`] needs to simulate a
/// long-lived flow workload deterministically. Built with chained
/// setters, like [`Scenario`](crate::Scenario).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceSpec {
    /// Cell name (report / artifact key).
    pub name: String,
    /// Network under service.
    pub topology: TopologySpec,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Holding-time law.
    pub holding: HoldingSpec,
    /// Destination popularity law.
    pub popularity: PopularitySpec,
    /// Admission policy for blocked arrivals.
    pub policy: AdmissionPolicy,
    /// Link dilation (circuits per link).
    pub dilation: u32,
    /// Route length budget per request; `0` = auto (`2n + 2` for cube
    /// dimension `n` — comfortably above the sparse-hypercube detour
    /// diameter).
    pub max_len: u32,
    /// Simulated rounds.
    pub rounds: usize,
    /// Rounds per reporting window.
    pub window_rounds: usize,
    /// Base seed of the cell's single RNG stream.
    pub seed: u64,
    /// Dynamic link churn (`None` = the static PR 6 regime).
    pub churn: Option<ChurnSpec>,
    /// Two-tier QoS admission (`None` = single class).
    pub qos: Option<QosSpec>,
    /// Closed-loop sources next to the open-loop stream (`None` = none).
    pub closed_loop: Option<ClosedLoopSpec>,
    /// Route each round's fresh open-loop arrivals through the
    /// propose-then-commit batch pipeline (see [`crate::batch`]) instead
    /// of one-at-a-time serial requests. Phase 5b then runs in three
    /// sub-phases — serial intent draws, one batched `admit_round_flows`,
    /// serial per-outcome bookkeeping in sequence order — and its RNG
    /// order differs from serial mode (all intent draws precede every
    /// holding-time draw). Deterministic at any intra worker count.
    pub batch_admission: bool,
}

impl ServiceSpec {
    /// A spec with workload defaults: Poisson(4)/round, geometric holding
    /// with mean 8, Zipf(1.0) popularity, [`AdmissionPolicy::Reject`],
    /// dilation 1, auto `max_len`, 200 rounds in windows of 50, seed 1.
    #[must_use]
    pub fn new(name: &str, topology: TopologySpec) -> Self {
        Self {
            name: name.to_string(),
            topology,
            arrivals: ArrivalSpec::poisson(4.0),
            holding: HoldingSpec::Geometric { mean_rounds: 8.0 },
            popularity: PopularitySpec::Zipf { exponent: 1.0 },
            policy: AdmissionPolicy::Reject,
            dilation: 1,
            max_len: 0,
            rounds: 200,
            window_rounds: 50,
            seed: 1,
            churn: None,
            qos: None,
            closed_loop: None,
            batch_admission: false,
        }
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the holding-time law.
    #[must_use]
    pub fn holding(mut self, holding: HoldingSpec) -> Self {
        self.holding = holding;
        self
    }

    /// Sets the destination popularity law.
    #[must_use]
    pub fn popularity(mut self, popularity: PopularitySpec) -> Self {
        self.popularity = popularity;
        self
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the link dilation.
    #[must_use]
    pub fn dilation(mut self, dilation: u32) -> Self {
        self.dilation = dilation;
        self
    }

    /// Sets the route length budget (0 = auto).
    #[must_use]
    pub fn max_len(mut self, max_len: u32) -> Self {
        self.max_len = max_len;
        self
    }

    /// Sets the simulated round count.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the reporting window length.
    #[must_use]
    pub fn window_rounds(mut self, window_rounds: usize) -> Self {
        self.window_rounds = window_rounds;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables dynamic link churn.
    #[must_use]
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Enables two-tier QoS admission with preemption.
    #[must_use]
    pub fn qos(mut self, qos: QosSpec) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Adds closed-loop retry-with-backoff sources.
    #[must_use]
    pub fn closed_loop(mut self, closed_loop: ClosedLoopSpec) -> Self {
        self.closed_loop = Some(closed_loop);
        self
    }

    /// Routes fresh open-loop arrivals through propose-then-commit
    /// batched admission (see [`ServiceSpec::batch_admission`]).
    #[must_use]
    pub fn batch_admission(mut self, batch_admission: bool) -> Self {
        self.batch_admission = batch_admission;
        self
    }

    /// The effective route length budget (resolves `max_len == 0`).
    #[must_use]
    pub fn effective_max_len(&self) -> u32 {
        if self.max_len > 0 {
            return self.max_len;
        }
        let n = match self.topology {
            TopologySpec::SparseBase { n, .. } | TopologySpec::Hypercube { n } => n,
        };
        2 * n + 2
    }

    fn validate(&self) {
        assert!(self.rounds >= 1, "a service needs at least one round");
        assert!(self.window_rounds >= 1, "windows need at least one round");
        assert!(
            self.arrivals.rate_per_round.is_finite() && self.arrivals.rate_per_round >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        if let Some(curve) = self.arrivals.diurnal {
            assert!(
                (0.0..=1.0).contains(&curve.amplitude),
                "diurnal amplitude must be in [0, 1]"
            );
            assert!(
                curve.period_rounds >= 1,
                "diurnal period must be >= 1 round"
            );
        }
        if let HoldingSpec::Geometric { mean_rounds } = self.holding {
            assert!(
                mean_rounds.is_finite() && mean_rounds >= 1.0,
                "geometric holding mean must be >= 1 round"
            );
        }
        if let PopularitySpec::Zipf { exponent } = self.popularity {
            assert!(
                exponent.is_finite() && exponent >= 0.0,
                "Zipf exponent must be finite and non-negative"
            );
        }
        if let AdmissionPolicy::QueueWithTimeout { capacity, .. } = self.policy {
            assert!(capacity >= 1, "queue capacity must be >= 1");
        }
        if let Some(churn) = self.churn {
            assert!(
                churn.fail_rate_per_round.is_finite() && churn.fail_rate_per_round >= 0.0,
                "fail rate must be finite and non-negative"
            );
            assert!(
                churn.mttr_mean_rounds == 0.0
                    || (churn.mttr_mean_rounds.is_finite() && churn.mttr_mean_rounds >= 1.0),
                "MTTR mean must be 0 (permanent) or >= 1 round"
            );
        }
        if let Some(qos) = self.qos {
            assert!(
                (0.0..=1.0).contains(&qos.priority_share),
                "priority share must be in [0, 1]"
            );
        }
        if let Some(cl) = self.closed_loop {
            assert!(
                cl.think_mean_rounds.is_finite() && cl.think_mean_rounds >= 1.0,
                "think-time mean must be >= 1 round"
            );
            assert!(cl.backoff_base_rounds >= 1, "backoff base must be >= 1");
            assert!(
                cl.backoff_cap_rounds >= cl.backoff_base_rounds,
                "backoff cap must be >= the base"
            );
        }
    }
}

/// One reporting window of a [`ServiceReport`]: event counts over the
/// window plus integer-exact distribution summaries folded from the
/// window-scoped histograms (reset at each boundary).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// Window index (0-based).
    pub window: usize,
    /// First round of the window (inclusive).
    pub start_round: usize,
    /// One past the last round of the window.
    pub end_round: usize,
    /// Arrivals offered during the window.
    pub arrivals: u64,
    /// Flows admitted during the window (fresh + queued + detoured).
    pub admitted: u64,
    /// Arrivals conclusively lost during the window (policy drops,
    /// queue overflows, queue timeouts).
    pub rejected: u64,
    /// Queued arrivals that timed out during the window (⊆ `rejected`).
    pub timeouts: u64,
    /// Flows released (holding time expired) during the window.
    pub released: u64,
    /// Flows torn down by link faults during the window (includes
    /// failed reroute attempts).
    pub torn_down: u64,
    /// Flows rerouted in place around a failed link during the window.
    pub rerouted: u64,
    /// Best-effort flows preempted by priority admissions in the window.
    pub preempted: u64,
    /// Links that failed during the window.
    pub link_failures: u64,
    /// Active flows at the window's last round.
    pub active_flows_end: u64,
    /// Queue occupancy at the window's last round.
    pub queue_depth_end: u64,
    /// Route length (hops) of admissions in the window.
    pub latency_hops: MetricSummary,
    /// Rounds waited in queue per admission (0 = admitted on arrival).
    pub queue_wait_rounds: MetricSummary,
    /// Active-flow count sampled at each round end.
    pub occupancy_flows: MetricSummary,
    /// Engine-level admission denials per round (includes retries).
    pub blocked_per_round: MetricSummary,
}

/// Engine-level totals for the whole run, lifted out of
/// [`SimStats`](shc_netsim::SimStats) into a serializable row. The
/// service drives the engine directly, so `SimStats::requested` /
/// `skipped` stay 0 and are not reported here; `established` counts
/// every accepted circuit attempt (admissions, including queue retries
/// and detour second attempts).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineTotals {
    /// Circuits established over the run.
    pub established: u64,
    /// Circuit attempts the engine blocked over the run.
    pub blocked: u64,
    /// Total hops across established circuits.
    pub total_hops: u64,
    /// Peak per-link occupancy observed in any round.
    pub peak_link_load: u32,
}

/// The result of [`run_service`] on one [`ServiceSpec`]: identifying
/// fields, per-window rows, the final cumulative metrics snapshot, and
/// engine totals. Byte-identical JSON for the same spec regardless of
/// worker count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Cell name from the spec.
    pub service: String,
    /// Topology label (`G_{n,m}` / `Q_n`).
    pub topology: String,
    /// Admission policy label.
    pub policy: String,
    /// Vertices in the topology.
    pub num_vertices: u64,
    /// Link dilation.
    pub dilation: u32,
    /// Rounds simulated.
    pub rounds: usize,
    /// Rounds per window.
    pub window_rounds: usize,
    /// Seed the cell ran with.
    pub seed: u64,
    /// Per-window service-level rows.
    pub windows: Vec<WindowRow>,
    /// Cumulative whole-run snapshot of every metric (the façade's JSON
    /// endpoint; every name is documented in `docs/SERVICE.md`).
    pub totals: MetricsSnapshot,
    /// Engine-level totals.
    pub engine: EngineTotals,
}

/// Draws a Poisson(λ) variate by thinning: λ is split into ≤ 8-sized
/// parts (a Poisson sum is Poisson in the summed rate) and each part is
/// drawn with Knuth's product-of-uniforms loop, keeping the expected
/// uniform draws bounded per part. Deterministic in the RNG stream.
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let parts = (lambda / 8.0).ceil().max(1.0) as u64;
    let rate = lambda / parts as f64;
    let floor = (-rate).exp();
    let mut total = 0u64;
    for _ in 0..parts {
        let mut p = 1.0f64;
        let mut k = 0u64;
        loop {
            p *= rng.gen::<f64>();
            if p <= floor {
                break;
            }
            k += 1;
        }
        total += k;
    }
    total
}

/// Draws a geometric holding time on `{1, 2, …}` with the given mean via
/// the inverse CDF (`1 + ⌊ln(1 − u) / ln(1 − 1/mean)⌋`).
fn sample_geometric(rng: &mut StdRng, mean_rounds: f64) -> u64 {
    if mean_rounds <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean_rounds;
    let u: f64 = rng.gen(); // in [0, 1)
    let k = 1.0 + (1.0 - u).ln() / (1.0 - p).ln();
    (k.floor() as u64).max(1)
}

/// Zipf sampler over vertices `0..n`: a normalized CDF table built once,
/// sampled by binary search on one uniform draw.
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(n: u64, exponent: f64) -> Self {
        let n = usize::try_from(n).expect("vertex count fits usize");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for v in 0..n {
            acc += ((v + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> Vertex {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1) as Vertex
    }
}

/// Metric handles, registered once per run in a fixed order (the
/// snapshot reports them in exactly this order).
struct Instruments {
    c_arrivals: CounterId,
    c_admitted: CounterId,
    c_detour: CounterId,
    c_queued: CounterId,
    c_rejected: CounterId,
    c_timeout: CounterId,
    c_overflow: CounterId,
    c_released: CounterId,
    c_torn: CounterId,
    c_reroute: CounterId,
    c_preempt: CounterId,
    c_link_fail: CounterId,
    c_link_repair: CounterId,
    c_retry: CounterId,
    c_arr_pri: CounterId,
    c_adm_pri: CounterId,
    g_active: GaugeId,
    g_held: GaugeId,
    g_queue: GaugeId,
    g_failed: GaugeId,
    h_latency: HistogramId,
    h_wait: HistogramId,
    h_occupancy: HistogramId,
    h_blocked: HistogramId,
}

impl Instruments {
    fn register(m: &mut Metrics) -> Self {
        Self {
            c_arrivals: m.counter("flow_arrivals_total"),
            c_admitted: m.counter("flow_admitted_total"),
            c_detour: m.counter("flow_admitted_detour_total"),
            c_queued: m.counter("flow_queued_total"),
            c_rejected: m.counter("flow_rejected_total"),
            c_timeout: m.counter("flow_timeout_total"),
            c_overflow: m.counter("flow_queue_overflow_total"),
            c_released: m.counter("flow_released_total"),
            c_torn: m.counter("flow_torn_down_total"),
            c_reroute: m.counter("flow_rerouted_total"),
            c_preempt: m.counter("flow_preempted_total"),
            c_link_fail: m.counter("link_fail_total"),
            c_link_repair: m.counter("link_repair_total"),
            c_retry: m.counter("flow_retry_total"),
            c_arr_pri: m.counter("flow_arrivals_priority_total"),
            c_adm_pri: m.counter("flow_admitted_priority_total"),
            g_active: m.gauge("flows_active"),
            g_held: m.gauge("links_held"),
            g_queue: m.gauge("queue_depth"),
            g_failed: m.gauge("links_failed"),
            h_latency: m.histogram("flow_path_hops", "hops", 64),
            h_wait: m.histogram("flow_queue_wait_rounds", "rounds", 256),
            h_occupancy: m.histogram("flows_active_per_round", "flows", 1 << 16),
            h_blocked: m.histogram("flows_blocked_per_round", "flows", 1 << 16),
        }
    }
}

/// Window-scoped histograms (reset at each window boundary); the
/// registry's histograms of the same shape stay cumulative.
struct WindowHists {
    latency: Histogram,
    wait: Histogram,
    occupancy: Histogram,
    blocked: Histogram,
}

impl WindowHists {
    fn new() -> Self {
        Self {
            latency: Histogram::new(64),
            wait: Histogram::new(256),
            occupancy: Histogram::new(1 << 16),
            blocked: Histogram::new(1 << 16),
        }
    }

    fn reset(&mut self) {
        self.latency.reset();
        self.wait.reset();
        self.occupancy.reset();
        self.blocked.reset();
    }
}

/// An arrival parked by [`AdmissionPolicy::QueueWithTimeout`].
struct Queued {
    src: Vertex,
    dst: Vertex,
    enqueued: usize,
    priority: bool,
}

/// One closed-loop source: holds at most one session; `next_at` is the
/// round of its next attempt (`usize::MAX` = parked forever, e.g. an
/// infinite-holding session), `failures` counts consecutive blocked
/// attempts for the backoff ladder.
#[derive(Clone, Copy)]
struct ClSource {
    next_at: usize,
    failures: u32,
}

/// Shared admission bookkeeping: counters, latency/wait samples, QoS
/// tier accounting, and the departure draw (one spot in the RNG stream
/// per admission). Returns the scheduled departure round, or `None` when
/// the flow outlives the horizon (or never departs).
#[allow(clippy::too_many_arguments)]
fn admit(
    m: &mut Metrics,
    ins: &Instruments,
    wnd: &mut WindowHists,
    departures: &mut [Vec<FlowId>],
    be_order: &mut VecDeque<FlowId>,
    rng: &mut StdRng,
    spec: &ServiceSpec,
    t: usize,
    flow: FlowId,
    hops: u32,
    wait: u64,
    priority: bool,
) -> Option<usize> {
    m.inc(ins.c_admitted);
    if priority {
        m.inc(ins.c_adm_pri);
    } else if spec.qos.is_some() {
        // Preemption victims are best-effort flows, oldest admission
        // first; the deque is lazily compacted when handles go stale.
        be_order.push_back(flow);
    }
    m.record(ins.h_latency, u64::from(hops));
    wnd.latency.record(u64::from(hops));
    m.record(ins.h_wait, wait);
    wnd.wait.record(wait);
    if let HoldingSpec::Geometric { mean_rounds } = spec.holding {
        let hold = sample_geometric(rng, mean_rounds);
        let depart = t.saturating_add(usize::try_from(hold).unwrap_or(usize::MAX));
        if depart < departures.len() {
            // Flows departing after the horizon simply stay active.
            departures[depart].push(flow);
            return Some(depart);
        }
    }
    None
}

/// Simulates one service cell to completion. Sequential and
/// deterministic: see the [module docs](self) for the event order and
/// the determinism contract, and `docs/SERVICE.md` for every metric the
/// report carries.
///
/// # Panics
/// Panics on an invalid spec (zero rounds/window, negative rates,
/// geometric mean < 1, diurnal amplitude outside `[0, 1]`, zero queue
/// capacity).
#[must_use]
pub fn run_service(spec: &ServiceSpec) -> ServiceReport {
    run_service_probed(spec, NoProbe).0
}

/// [`run_service`] with `intra` propose workers inside each batched
/// round (only meaningful for [`ServiceSpec::batch_admission`] cells —
/// serial admission ignores it). The report is byte-identical for any
/// `intra`: committed outcomes are ordered by arrival sequence number,
/// never by the propose-phase thread schedule.
///
/// # Panics
/// Panics as [`run_service`].
#[must_use]
pub fn run_service_intra(spec: &ServiceSpec, intra: usize) -> ServiceReport {
    run_service_probed_intra(spec, NoProbe, intra).0
}

/// [`run_service`] with a deterministic trace attached: simulates the
/// cell with a [`TraceJournal`] probe (identified as `cell`, ring
/// capacity `capacity` events) and returns the report together with the
/// filled journal. The report is byte-identical to an untraced run of
/// the same spec, and the journal depends only on the spec — see
/// `docs/OBSERVABILITY.md`.
///
/// # Panics
/// Panics on an invalid spec or `capacity == 0`.
#[must_use]
pub fn run_service_traced(
    spec: &ServiceSpec,
    cell: u32,
    capacity: usize,
) -> (ServiceReport, TraceJournal) {
    run_service_probed(spec, TraceJournal::new(cell, capacity))
}

/// [`run_service_traced`] with `intra` propose workers inside each
/// batched round. The journal — batch-conflict events included, stamped
/// in commit order — is byte-identical for any `intra`.
///
/// # Panics
/// Panics as [`run_service_traced`].
#[must_use]
pub fn run_service_traced_intra(
    spec: &ServiceSpec,
    cell: u32,
    capacity: usize,
    intra: usize,
) -> (ServiceReport, TraceJournal) {
    run_service_probed_intra(spec, TraceJournal::new(cell, capacity), intra)
}

/// Generic core of [`run_service`]: simulates one cell with an attached
/// [`RunProbe`], returning the report and the probe. With [`NoProbe`]
/// every probe call compiles out (`P::ENABLED == false`), so the
/// untraced path pays nothing.
///
/// # Panics
/// Panics on an invalid spec (zero rounds/window, negative rates,
/// geometric mean < 1, diurnal amplitude outside `[0, 1]`, zero queue
/// capacity).
#[must_use]
pub fn run_service_probed<P: RunProbe + Sync>(spec: &ServiceSpec, probe: P) -> (ServiceReport, P) {
    run_service_probed_intra(spec, probe, 1)
}

/// Concludes one fresh open-loop arrival given its first-attempt
/// outcome: counts the denial, runs QoS preemption retries, then the
/// admission-policy fallback. Shared verbatim by serial admission
/// (outcome = `request_flow`) and batched admission (outcome = the
/// committed batch outcome), so the two modes treat a blocked arrival
/// identically from this point on.
#[allow(clippy::too_many_arguments)]
fn conclude_arrival<P: RunProbe>(
    engine: &mut Engine<'_, crate::scenario::BuiltTopology, P>,
    m: &mut Metrics,
    ins: &Instruments,
    wnd: &mut WindowHists,
    departures: &mut [Vec<FlowId>],
    be_order: &mut VecDeque<FlowId>,
    queue: &mut VecDeque<Queued>,
    rng: &mut StdRng,
    spec: &ServiceSpec,
    t: usize,
    max_len: u32,
    src: Vertex,
    dst: Vertex,
    priority: bool,
    mut outcome: FlowOutcome,
    blocked_round: &mut u64,
) {
    if matches!(outcome, FlowOutcome::Blocked(_)) {
        // Every engine-level denial counts exactly once.
        *blocked_round += 1;
        // A blocked priority arrival may evict best-effort
        // flows, oldest admission first, then retry. Evictions
        // stand even if every retry fails (the capacity may be
        // pinned somewhere else on the route).
        if let (true, Some(q)) = (priority, spec.qos) {
            for _ in 0..q.max_preemptions {
                let victim = loop {
                    match be_order.pop_front() {
                        Some(f) if engine.is_flow_active(f) => break Some(f),
                        Some(_) => continue, // stale handle
                        None => break None,
                    }
                };
                let Some(victim) = victim else { break };
                engine.preempt_flow(victim);
                m.inc(ins.c_preempt);
                outcome = engine.request_flow(src, dst, max_len);
                match outcome {
                    FlowOutcome::Established { .. } => break,
                    FlowOutcome::Blocked(_) => *blocked_round += 1,
                }
            }
        }
    }
    match outcome {
        FlowOutcome::Established { flow, hops } => {
            admit(
                m, ins, wnd, departures, be_order, rng, spec, t, flow, hops, 0, priority,
            );
        }
        FlowOutcome::Blocked(_) => match spec.policy {
            AdmissionPolicy::Reject => m.inc(ins.c_rejected),
            AdmissionPolicy::QueueWithTimeout { capacity, .. } => {
                if queue.len() < capacity {
                    if P::ENABLED {
                        engine.probe_mut().on_flow_queued(src, dst);
                    }
                    queue.push_back(Queued {
                        src,
                        dst,
                        enqueued: t,
                        priority,
                    });
                    m.inc(ins.c_queued);
                } else {
                    if P::ENABLED {
                        engine.probe_mut().on_queue_overflow();
                    }
                    m.inc(ins.c_overflow);
                    m.inc(ins.c_rejected);
                }
            }
            AdmissionPolicy::DegradeToDetour { extra_hops } => {
                match engine.request_flow(src, dst, max_len + extra_hops) {
                    FlowOutcome::Established { flow, hops } => {
                        m.inc(ins.c_detour);
                        admit(
                            m, ins, wnd, departures, be_order, rng, spec, t, flow, hops, 0,
                            priority,
                        );
                    }
                    FlowOutcome::Blocked(_) => {
                        *blocked_round += 1;
                        m.inc(ins.c_rejected);
                    }
                }
            }
        },
    }
}

/// [`run_service_probed`] with `intra` propose workers inside each
/// batched round (see [`run_service_intra`]).
///
/// # Panics
/// Panics as [`run_service_probed`].
#[must_use]
pub fn run_service_probed_intra<P: RunProbe + Sync>(
    spec: &ServiceSpec,
    probe: P,
    intra: usize,
) -> (ServiceReport, P) {
    spec.validate();
    let built = spec.topology.build();
    let n = NetTopology::num_vertices(&built);
    assert!(n >= 2, "a service needs at least two vertices");
    let max_len = spec.effective_max_len();
    let mut engine = Engine::with_probe(&built, spec.dilation, probe);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // The fault process rides its own stream *derived from* (not split
    // off) the cell seed: traffic draws are byte-identical whether churn
    // is absent, zero-rate, or heavy — the metamorphic baseline.
    let mut fault_rng = StdRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
    let zipf = match spec.popularity {
        PopularitySpec::Zipf { exponent } => Some(ZipfCdf::new(n, exponent)),
        PopularitySpec::Uniform => None,
    };
    // Currently-live links the failure draw samples from (churn only).
    let mut live_edges: Vec<(Vertex, Vertex)> = if spec.churn.is_some() {
        crate::faults::enumerate_edges(&built)
    } else {
        Vec::new()
    };

    let mut m = Metrics::new();
    let ins = Instruments::register(&mut m);
    let mut wnd = WindowHists::new();
    let mut windows: Vec<WindowRow> = Vec::new();
    // Counter values at the current window's start, for per-window deltas.
    let mut base_arrivals = 0u64;
    let mut base_admitted = 0u64;
    let mut base_rejected = 0u64;
    let mut base_timeouts = 0u64;
    let mut base_released = 0u64;
    let mut base_torn = 0u64;
    let mut base_reroute = 0u64;
    let mut base_preempt = 0u64;
    let mut base_link_fail = 0u64;
    let mut window_start = 0usize;

    let mut departures: Vec<Vec<FlowId>> = vec![Vec::new(); spec.rounds];
    let mut queue: VecDeque<Queued> = VecDeque::new();
    // Repairs scheduled per round (churn with a healing MTTR only).
    let mut repairs: Vec<Vec<(Vertex, Vertex)>> = if spec.churn.is_some() {
        vec![Vec::new(); spec.rounds]
    } else {
        Vec::new()
    };
    // Best-effort flows in admission order — the preemption victim queue.
    let mut be_order: VecDeque<FlowId> = VecDeque::new();
    let mut sources: Vec<ClSource> = match spec.closed_loop {
        Some(cl) => vec![
            ClSource {
                next_at: 0,
                failures: 0,
            };
            usize::try_from(cl.sources).expect("source count fits usize")
        ],
        None => Vec::new(),
    };
    // Batched admission: one scratch pool reused across every round.
    let mut admitter = spec
        .batch_admission
        .then(|| BatchAdmitter::new(n, intra));

    for t in 0..spec.rounds {
        engine.begin_round();
        let mut blocked_round = 0u64;

        // (2) Dynamic churn: heal links due this round, then draw fresh
        // failures and fail over the flows holding them.
        if let Some(churn) = spec.churn {
            let due = std::mem::take(&mut repairs[t]);
            for (u, v) in due {
                engine.repair_link(u, v);
                live_edges.push((u, v));
                m.inc(ins.c_link_repair);
                if P::ENABLED {
                    engine.probe_mut().on_link_repaired(u, v);
                }
            }
            let fails = sample_poisson(&mut fault_rng, churn.fail_rate_per_round);
            for _ in 0..fails {
                if live_edges.is_empty() {
                    break; // everything is already down
                }
                let idx = fault_rng.gen_range(0..live_edges.len() as u64);
                let (u, v) = live_edges.swap_remove(usize::try_from(idx).expect("index fits"));
                let affected = engine.fail_link(u, v);
                m.inc(ins.c_link_fail);
                if P::ENABLED {
                    let count = u32::try_from(affected.len()).expect("affected count fits u32");
                    engine.probe_mut().on_fault_under_load(u, v, count);
                }
                for flow in affected {
                    match churn.on_fail {
                        FailoverPolicy::Teardown => {
                            engine.teardown_flow(flow);
                            m.inc(ins.c_torn);
                        }
                        FailoverPolicy::Reroute => match engine.reroute_flow(flow, max_len) {
                            RerouteOutcome::Rerouted { .. } => m.inc(ins.c_reroute),
                            RerouteOutcome::TornDown(_) => m.inc(ins.c_torn),
                        },
                    }
                }
                if churn.mttr_mean_rounds > 0.0 {
                    let heal = sample_geometric(&mut fault_rng, churn.mttr_mean_rounds);
                    let at = t.saturating_add(usize::try_from(heal).unwrap_or(usize::MAX));
                    if at < spec.rounds {
                        repairs[at].push((u, v));
                    }
                    // Links healing after the horizon just stay down.
                }
            }
            m.set(
                ins.g_failed,
                i64::try_from(engine.failed_links()).expect("gauge fits i64"),
            );
        }

        // (3) Departures scheduled for this round, in admission order.
        // A handle whose flow was torn down or preempted is stale — skip.
        let departing = std::mem::take(&mut departures[t]);
        for flow in departing {
            if !engine.is_flow_active(flow) {
                continue;
            }
            engine.release_flow(flow);
            m.inc(ins.c_released);
        }

        // (4) FIFO retry of queued arrivals; timeouts reject.
        if let AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds, ..
        } = spec.policy
        {
            for _ in 0..queue.len() {
                let q = queue.pop_front().expect("queue length checked");
                let waited = (t - q.enqueued) as u64;
                if waited > u64::from(max_wait_rounds) {
                    if P::ENABLED {
                        engine.probe_mut().on_flow_timeout(waited);
                    }
                    m.inc(ins.c_timeout);
                    m.inc(ins.c_rejected);
                    continue;
                }
                match engine.request_flow(q.src, q.dst, max_len) {
                    FlowOutcome::Established { flow, hops } => {
                        if P::ENABLED {
                            engine.probe_mut().on_queue_admit(waited);
                        }
                        admit(
                            &mut m,
                            &ins,
                            &mut wnd,
                            &mut departures,
                            &mut be_order,
                            &mut rng,
                            spec,
                            t,
                            flow,
                            hops,
                            waited,
                            q.priority,
                        );
                    }
                    FlowOutcome::Blocked(_) => {
                        blocked_round += 1;
                        queue.push_back(q);
                    }
                }
            }
        }

        // (5) Closed-loop sources whose timer expired, in source order.
        if let Some(cl) = spec.closed_loop {
            for s in &mut sources {
                if t < s.next_at {
                    continue;
                }
                m.inc(ins.c_arrivals);
                if s.failures > 0 {
                    m.inc(ins.c_retry);
                }
                let dst = match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..n),
                };
                let src = loop {
                    let s = rng.gen_range(0..n);
                    if s != dst {
                        break s;
                    }
                };
                match engine.request_flow(src, dst, max_len) {
                    FlowOutcome::Established { flow, hops } => {
                        s.failures = 0;
                        let depart = admit(
                            &mut m,
                            &ins,
                            &mut wnd,
                            &mut departures,
                            &mut be_order,
                            &mut rng,
                            spec,
                            t,
                            flow,
                            hops,
                            0,
                            false,
                        );
                        s.next_at = match depart {
                            Some(d) => {
                                let think = sample_geometric(&mut rng, cl.think_mean_rounds);
                                d.saturating_add(usize::try_from(think).unwrap_or(usize::MAX))
                            }
                            // The session outlives the horizon: parked.
                            None => usize::MAX,
                        };
                    }
                    FlowOutcome::Blocked(_) => {
                        blocked_round += 1;
                        m.inc(ins.c_rejected);
                        s.failures += 1;
                        let exp = s.failures.saturating_sub(1).min(16);
                        let backoff = (u64::from(cl.backoff_base_rounds) << exp)
                            .min(u64::from(cl.backoff_cap_rounds))
                            .max(1);
                        s.next_at =
                            t.saturating_add(usize::try_from(backoff).unwrap_or(usize::MAX));
                    }
                }
            }
        }

        // (5b) Fresh open-loop arrivals. Serial mode draws and admits
        // each arrival in turn (the PR 6 stream, verbatim). Batched mode
        // runs three sub-phases: serial intent draws, one batched
        // propose/commit over all intents, then serial per-outcome
        // bookkeeping in sequence order — a different (documented) RNG
        // order, deterministic at any intra worker count.
        let k = sample_poisson(&mut rng, spec.arrivals.rate_at(t));
        if let Some(adm) = admitter.as_mut() {
            let mut intents = Vec::with_capacity(usize::try_from(k).unwrap_or(0));
            for _ in 0..k {
                m.inc(ins.c_arrivals);
                let priority = match spec.qos {
                    Some(q) => rng.gen::<f64>() < q.priority_share,
                    None => false,
                };
                if priority {
                    m.inc(ins.c_arr_pri);
                }
                let dst = match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..n),
                };
                let src = loop {
                    let s = rng.gen_range(0..n);
                    if s != dst {
                        break s;
                    }
                };
                intents.push((src, dst, priority));
            }
            let reqs: Vec<BatchRequest> = intents
                .iter()
                .map(|&(src, dst, _)| BatchRequest { src, dst, max_len })
                .collect();
            let (batch_outcomes, _conflicts) = adm.admit_round_flows(&mut engine, &reqs);
            for (&(src, dst, priority), outcome) in intents.iter().zip(batch_outcomes) {
                conclude_arrival(
                    &mut engine,
                    &mut m,
                    &ins,
                    &mut wnd,
                    &mut departures,
                    &mut be_order,
                    &mut queue,
                    &mut rng,
                    spec,
                    t,
                    max_len,
                    src,
                    dst,
                    priority,
                    outcome,
                    &mut blocked_round,
                );
            }
        } else {
            for _ in 0..k {
                m.inc(ins.c_arrivals);
                // QoS tier draw: one uniform per arrival, only when tiers
                // exist (single-class cells keep the PR 6 stream verbatim).
                let priority = match spec.qos {
                    Some(q) => rng.gen::<f64>() < q.priority_share,
                    None => false,
                };
                if priority {
                    m.inc(ins.c_arr_pri);
                }
                let dst = match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..n),
                };
                let src = loop {
                    let s = rng.gen_range(0..n);
                    if s != dst {
                        break s;
                    }
                };
                let outcome = engine.request_flow(src, dst, max_len);
                conclude_arrival(
                    &mut engine,
                    &mut m,
                    &ins,
                    &mut wnd,
                    &mut departures,
                    &mut be_order,
                    &mut queue,
                    &mut rng,
                    spec,
                    t,
                    max_len,
                    src,
                    dst,
                    priority,
                    outcome,
                    &mut blocked_round,
                );
            }
        }

        // (6) End-of-round samples.
        let active = engine.active_flows() as u64;
        m.record(ins.h_occupancy, active);
        wnd.occupancy.record(active);
        m.record(ins.h_blocked, blocked_round);
        wnd.blocked.record(blocked_round);
        m.set(ins.g_active, i64::try_from(active).expect("gauge fits i64"));
        m.set(
            ins.g_held,
            i64::try_from(engine.held_link_hops()).expect("gauge fits i64"),
        );
        m.set(
            ins.g_queue,
            i64::try_from(queue.len()).expect("gauge fits i64"),
        );
        if P::ENABLED {
            let info = RoundEndInfo {
                active_flows: active,
                held_link_hops: engine.held_link_hops(),
                queue_depth: queue.len() as u64,
            };
            engine.probe_mut().on_round_end(&info);
        }

        // Window boundary (also closes the final partial window).
        if (t + 1) % spec.window_rounds == 0 || t + 1 == spec.rounds {
            let arrivals = m.counter_value(ins.c_arrivals);
            let admitted = m.counter_value(ins.c_admitted);
            let rejected = m.counter_value(ins.c_rejected);
            let timeouts = m.counter_value(ins.c_timeout);
            let released = m.counter_value(ins.c_released);
            let torn = m.counter_value(ins.c_torn);
            let reroute = m.counter_value(ins.c_reroute);
            let preempt = m.counter_value(ins.c_preempt);
            let link_fail = m.counter_value(ins.c_link_fail);
            windows.push(WindowRow {
                window: windows.len(),
                start_round: window_start,
                end_round: t + 1,
                arrivals: arrivals - base_arrivals,
                admitted: admitted - base_admitted,
                rejected: rejected - base_rejected,
                timeouts: timeouts - base_timeouts,
                released: released - base_released,
                torn_down: torn - base_torn,
                rerouted: reroute - base_reroute,
                preempted: preempt - base_preempt,
                link_failures: link_fail - base_link_fail,
                active_flows_end: active,
                queue_depth_end: queue.len() as u64,
                latency_hops: wnd.latency.summary(),
                queue_wait_rounds: wnd.wait.summary(),
                occupancy_flows: wnd.occupancy.summary(),
                blocked_per_round: wnd.blocked.summary(),
            });
            base_arrivals = arrivals;
            base_admitted = admitted;
            base_rejected = rejected;
            base_timeouts = timeouts;
            base_released = released;
            base_torn = torn;
            base_reroute = reroute;
            base_preempt = preempt;
            base_link_fail = link_fail;
            window_start = t + 1;
            wnd.reset();
        }
    }

    // Conservation: every offered arrival ends admitted, rejected, or
    // still waiting in the queue — the service-level twin of the
    // engine's `requested == established + blocked + skipped`.
    debug_assert_eq!(
        m.counter_value(ins.c_arrivals),
        m.counter_value(ins.c_admitted) + m.counter_value(ins.c_rejected) + queue.len() as u64,
    );

    let (stats, probe) = engine.finish_with_probe();
    let report = ServiceReport {
        service: spec.name.clone(),
        topology: spec.topology.label(),
        policy: spec.policy.label(),
        num_vertices: n,
        dilation: spec.dilation,
        rounds: spec.rounds,
        window_rounds: spec.window_rounds,
        seed: spec.seed,
        windows,
        totals: m.snapshot(),
        engine: EngineTotals {
            established: stats.established as u64,
            blocked: stats.blocked as u64,
            total_hops: stats.total_hops as u64,
            peak_link_load: stats.peak_link_load,
        },
    };
    (report, probe)
}

/// The built-in service catalog behind `exp_serve`: sparse hypercube vs
/// dense cube, crossed with all three admission policies, plus one
/// diurnal stress cell per topology. `fast` shrinks dimensions and
/// horizons for CI.
#[must_use]
pub fn builtin_service_catalog(fast: bool) -> Vec<ServiceSpec> {
    let (n, m, rounds, window, rate) = if fast {
        (6u32, 2u32, 120usize, 40usize, 6.0)
    } else {
        (10, 3, 1200, 200, 48.0)
    };
    let topologies = [
        TopologySpec::SparseBase { n, m },
        TopologySpec::Hypercube { n },
    ];
    let policies = [
        AdmissionPolicy::Reject,
        AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds: 8,
            capacity: 256,
        },
        AdmissionPolicy::DegradeToDetour { extra_hops: 2 },
    ];
    let mut cells = Vec::new();
    for topology in topologies {
        for policy in policies {
            let name = format!("serve_{}_{}", topology.label(), policy.label());
            cells.push(
                ServiceSpec::new(&name, topology)
                    .arrivals(ArrivalSpec::poisson(rate))
                    .policy(policy)
                    .rounds(rounds)
                    .window_rounds(window)
                    .seed(0xF1_0805),
            );
        }
        let name = format!("serve_{}_diurnal", topology.label());
        cells.push(
            ServiceSpec::new(&name, topology)
                .arrivals(ArrivalSpec::poisson(rate).with_diurnal(DiurnalCurve {
                    amplitude: 0.8,
                    period_rounds: u32::try_from(window).expect("window fits u32"),
                }))
                .policy(AdmissionPolicy::QueueWithTimeout {
                    max_wait_rounds: 8,
                    capacity: 256,
                })
                .rounds(rounds)
                .window_rounds(window)
                .seed(0xF1_0806),
        );
        // Churn phase 2 (PR 9): faults under held flows, reroute vs
        // teardown failover, QoS preemption, closed-loop sources.
        let fail_rate = if fast { 0.5 } else { 1.5 };
        let name = format!("serve_{}_churn_teardown", topology.label());
        cells.push(
            ServiceSpec::new(&name, topology)
                .arrivals(ArrivalSpec::poisson(rate))
                .policy(AdmissionPolicy::Reject)
                .churn(ChurnSpec {
                    fail_rate_per_round: fail_rate,
                    mttr_mean_rounds: 12.0,
                    on_fail: FailoverPolicy::Teardown,
                })
                .rounds(rounds)
                .window_rounds(window)
                .seed(0xF1_0807),
        );
        let name = format!("serve_{}_churn_reroute", topology.label());
        cells.push(
            ServiceSpec::new(&name, topology)
                .arrivals(ArrivalSpec::poisson(rate))
                .policy(AdmissionPolicy::QueueWithTimeout {
                    max_wait_rounds: 8,
                    capacity: 256,
                })
                .churn(ChurnSpec {
                    fail_rate_per_round: fail_rate,
                    mttr_mean_rounds: 12.0,
                    on_fail: FailoverPolicy::Reroute,
                })
                .rounds(rounds)
                .window_rounds(window)
                .seed(0xF1_0808),
        );
        let name = format!("serve_{}_qos", topology.label());
        cells.push(
            ServiceSpec::new(&name, topology)
                .arrivals(ArrivalSpec::poisson(rate))
                .policy(AdmissionPolicy::Reject)
                .qos(QosSpec {
                    priority_share: 0.25,
                    max_preemptions: 2,
                })
                .rounds(rounds)
                .window_rounds(window)
                .seed(0xF1_0809),
        );
        let name = format!("serve_{}_closed_loop", topology.label());
        cells.push(
            ServiceSpec::new(&name, topology)
                .arrivals(ArrivalSpec::poisson(rate))
                .policy(AdmissionPolicy::Reject)
                .closed_loop(ClosedLoopSpec {
                    sources: if fast { 8 } else { 32 },
                    think_mean_rounds: 4.0,
                    backoff_base_rounds: 1,
                    backoff_cap_rounds: 8,
                })
                .rounds(rounds)
                .window_rounds(window)
                .seed(0xF1_080A),
        );
        // Batched admission (this PR): the same open-loop load, with
        // each round's fresh arrivals routed through propose-then-commit
        // batched admission — byte-identical at any intra worker count.
        let name = format!("serve_{}_batched", topology.label());
        cells.push(
            ServiceSpec::new(&name, topology)
                .arrivals(ArrivalSpec::poisson(rate))
                .policy(AdmissionPolicy::Reject)
                .batch_admission(true)
                .rounds(rounds)
                .window_rounds(window)
                .seed(0xF1_080B),
        );
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn counter(report: &ServiceReport, name: &str) -> u64 {
        report
            .totals
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .value
    }

    fn base_spec(policy: AdmissionPolicy) -> ServiceSpec {
        ServiceSpec::new("t", TopologySpec::Hypercube { n: 4 })
            .arrivals(ArrivalSpec::poisson(5.0))
            .policy(policy)
            .rounds(80)
            .window_rounds(20)
            .seed(42)
    }

    #[test]
    fn conservation_holds_for_every_policy() {
        for policy in [
            AdmissionPolicy::Reject,
            AdmissionPolicy::QueueWithTimeout {
                max_wait_rounds: 4,
                capacity: 16,
            },
            AdmissionPolicy::DegradeToDetour { extra_hops: 2 },
        ] {
            let report = run_service(&base_spec(policy));
            let queue_end = report.windows.last().unwrap().queue_depth_end;
            assert_eq!(
                counter(&report, "flow_arrivals_total"),
                counter(&report, "flow_admitted_total")
                    + counter(&report, "flow_rejected_total")
                    + queue_end,
                "policy {:?}",
                policy
            );
            // Flow lifecycle: active = admitted − released.
            let active = report
                .totals
                .gauges
                .iter()
                .find(|g| g.name == "flows_active")
                .unwrap()
                .value;
            assert_eq!(
                active as u64,
                counter(&report, "flow_admitted_total") - counter(&report, "flow_released_total"),
            );
            // Subset counters stay subsets.
            assert!(
                counter(&report, "flow_admitted_detour_total")
                    <= counter(&report, "flow_admitted_total")
            );
            assert!(
                counter(&report, "flow_timeout_total")
                    + counter(&report, "flow_queue_overflow_total")
                    <= counter(&report, "flow_rejected_total")
            );
        }
    }

    #[test]
    fn reports_are_deterministic_to_the_byte() {
        for spec in builtin_service_catalog(true).iter().take(2) {
            let a = run_service(spec);
            let b = run_service(spec);
            assert_eq!(a, b);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
        }
    }

    #[test]
    fn patient_unbounded_queue_never_rejects() {
        let spec = base_spec(AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds: u32::MAX,
            capacity: usize::MAX >> 1,
        });
        let report = run_service(&spec);
        assert_eq!(counter(&report, "flow_rejected_total"), 0);
        assert_eq!(counter(&report, "flow_timeout_total"), 0);
        assert_eq!(counter(&report, "flow_queue_overflow_total"), 0);
    }

    #[test]
    fn infinite_holding_never_releases() {
        let spec = base_spec(AdmissionPolicy::Reject).holding(HoldingSpec::Infinite);
        let report = run_service(&spec);
        assert_eq!(counter(&report, "flow_released_total"), 0);
        let last = report.windows.last().unwrap();
        assert_eq!(
            last.active_flows_end,
            counter(&report, "flow_admitted_total")
        );
        // Occupancy is monotone under pure accumulation.
        let maxes: Vec<u64> = report
            .windows
            .iter()
            .map(|w| w.occupancy_flows.max)
            .collect();
        assert!(maxes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diurnal_peak_windows_offer_more_traffic() {
        // Period == 2 windows: window 0 covers the sine's positive hump,
        // window 1 the negative one.
        let spec = ServiceSpec::new("tide", TopologySpec::Hypercube { n: 4 })
            .arrivals(ArrivalSpec::poisson(20.0).with_diurnal(DiurnalCurve {
                amplitude: 1.0,
                period_rounds: 80,
            }))
            .rounds(80)
            .window_rounds(40)
            .seed(7);
        let report = run_service(&spec);
        assert_eq!(report.windows.len(), 2);
        assert!(report.windows[0].arrivals > report.windows[1].arrivals);
    }

    #[test]
    fn detour_admissions_ride_longer_routes() {
        // Budget pinned to the Q_4 diameter: when every shortest route
        // is saturated, only the +4 detour attempt can still land.
        let spec = base_spec(AdmissionPolicy::DegradeToDetour { extra_hops: 4 })
            .arrivals(ArrivalSpec::poisson(12.0))
            .popularity(PopularitySpec::Zipf { exponent: 1.5 })
            .max_len(4);
        let report = run_service(&spec);
        // Under heavy skew the detour path actually fires.
        assert!(counter(&report, "flow_admitted_detour_total") > 0);
    }

    #[test]
    fn window_rows_tile_the_horizon() {
        let spec = base_spec(AdmissionPolicy::Reject)
            .rounds(50)
            .window_rounds(20);
        let report = run_service(&spec);
        let bounds: Vec<(usize, usize)> = report
            .windows
            .iter()
            .map(|w| (w.start_round, w.end_round))
            .collect();
        assert_eq!(bounds, vec![(0, 20), (20, 40), (40, 50)]);
        let total_arrivals: u64 = report.windows.iter().map(|w| w.arrivals).sum();
        assert_eq!(total_arrivals, counter(&report, "flow_arrivals_total"));
    }

    #[test]
    fn traced_run_matches_untraced_and_audits_clean() {
        for policy in [
            AdmissionPolicy::QueueWithTimeout {
                max_wait_rounds: 4,
                capacity: 16,
            },
            AdmissionPolicy::DegradeToDetour { extra_hops: 2 },
        ] {
            let spec = base_spec(policy).arrivals(ArrivalSpec::poisson(10.0));
            let plain = run_service(&spec);
            let (traced, journal) = run_service_traced(&spec, 3, 1 << 18);
            // Attaching the probe must not perturb the simulation.
            assert_eq!(plain, traced);
            assert_eq!(journal.cell(), 3);
            assert_eq!(journal.dropped(), 0);
            let audit = crate::trace::audit::audit_journal(&journal)
                .unwrap_or_else(|e| panic!("policy {policy:?}: {e}"));
            assert_eq!(audit.rounds_checked, spec.rounds as u64);
            assert_eq!(audit.flows_opened, counter(&traced, "flow_admitted_total"));
            assert_eq!(
                audit.flows_released,
                counter(&traced, "flow_released_total")
            );
            // The journal is a pure function of the spec.
            let (_, again) = run_service_traced(&spec, 3, 1 << 18);
            assert_eq!(journal.render_jsonl(), again.render_jsonl());
        }
    }

    #[test]
    fn traced_run_journals_queue_lifecycle_events() {
        let spec = base_spec(AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds: 2,
            capacity: 4,
        })
        .arrivals(ArrivalSpec::poisson(20.0))
        .popularity(PopularitySpec::Zipf { exponent: 1.5 });
        let (report, journal) = run_service_traced(&spec, 0, 1 << 18);
        let count = |pred: &dyn Fn(&TraceEvent) -> bool| {
            journal.records().filter(|r| pred(&r.event)).count() as u64
        };
        use crate::trace::TraceEvent;
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::FlowQueued { .. })),
            counter(&report, "flow_queued_total")
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::FlowTimeout { .. })),
            counter(&report, "flow_timeout_total")
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::QueueOverflow)),
            counter(&report, "flow_queue_overflow_total")
        );
        // Under this overload the queue actually exercises all paths.
        assert!(counter(&report, "flow_queued_total") > 0);
        assert!(counter(&report, "flow_queue_overflow_total") > 0);
    }

    fn gauge(report: &ServiceReport, name: &str) -> i64 {
        report
            .totals
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .value
    }

    #[test]
    fn churn_conserves_the_flow_ledger_and_audits_clean() {
        for on_fail in [FailoverPolicy::Teardown, FailoverPolicy::Reroute] {
            let spec = base_spec(AdmissionPolicy::Reject)
                .arrivals(ArrivalSpec::poisson(8.0))
                .churn(ChurnSpec {
                    fail_rate_per_round: 1.0,
                    mttr_mean_rounds: 6.0,
                    on_fail,
                });
            let (report, journal) = run_service_traced(&spec, 0, 1 << 18);
            assert!(
                counter(&report, "link_fail_total") > 0,
                "churn never fired ({on_fail:?})"
            );
            match on_fail {
                FailoverPolicy::Teardown => {
                    assert!(counter(&report, "flow_torn_down_total") > 0);
                    assert_eq!(counter(&report, "flow_rerouted_total"), 0);
                }
                FailoverPolicy::Reroute => {
                    assert!(counter(&report, "flow_rerouted_total") > 0);
                }
            }
            // Lifecycle: every admission ends released, torn down,
            // preempted, or still active (reroutes keep flows active).
            assert_eq!(
                gauge(&report, "flows_active") as u64,
                counter(&report, "flow_admitted_total")
                    - counter(&report, "flow_released_total")
                    - counter(&report, "flow_torn_down_total")
                    - counter(&report, "flow_preempted_total"),
                "{on_fail:?}"
            );
            // Arrival ledger still balances.
            let queue_end = report.windows.last().unwrap().queue_depth_end;
            assert_eq!(
                counter(&report, "flow_arrivals_total"),
                counter(&report, "flow_admitted_total")
                    + counter(&report, "flow_rejected_total")
                    + queue_end
            );
            // The trace stream is conserved through teardown/reroute.
            let audit = crate::trace::audit::audit_journal(&journal)
                .unwrap_or_else(|e| panic!("{on_fail:?}: {e}"));
            assert_eq!(
                audit.flows_torn_down,
                counter(&report, "flow_torn_down_total")
            );
            assert_eq!(
                audit.flows_rerouted,
                counter(&report, "flow_rerouted_total")
            );
            assert_eq!(audit.links_failed, counter(&report, "link_fail_total"));
            assert_eq!(audit.links_repaired, counter(&report, "link_repair_total"));
            // Window deltas tile the totals.
            let torn: u64 = report.windows.iter().map(|w| w.torn_down).sum();
            assert_eq!(torn, counter(&report, "flow_torn_down_total"));
            let fails: u64 = report.windows.iter().map(|w| w.link_failures).sum();
            assert_eq!(fails, counter(&report, "link_fail_total"));
        }
    }

    #[test]
    fn qos_priority_preempts_best_effort() {
        // Saturate a small ring-like cube so priority arrivals must evict.
        let spec = ServiceSpec::new("qos", TopologySpec::Hypercube { n: 3 })
            .arrivals(ArrivalSpec::poisson(12.0))
            .holding(HoldingSpec::Geometric { mean_rounds: 20.0 })
            .qos(QosSpec {
                priority_share: 0.3,
                max_preemptions: 2,
            })
            .rounds(60)
            .window_rounds(20)
            .seed(13);
        let (report, journal) = run_service_traced(&spec, 0, 1 << 18);
        assert!(
            counter(&report, "flow_preempted_total") > 0,
            "no preemption fired"
        );
        assert!(counter(&report, "flow_arrivals_priority_total") > 0);
        assert!(
            counter(&report, "flow_admitted_priority_total")
                <= counter(&report, "flow_admitted_total")
        );
        assert!(
            counter(&report, "flow_arrivals_priority_total")
                <= counter(&report, "flow_arrivals_total")
        );
        assert_eq!(
            gauge(&report, "flows_active") as u64,
            counter(&report, "flow_admitted_total")
                - counter(&report, "flow_released_total")
                - counter(&report, "flow_torn_down_total")
                - counter(&report, "flow_preempted_total"),
        );
        let audit = crate::trace::audit::audit_journal(&journal).expect("qos stream conserved");
        assert_eq!(
            audit.flows_preempted,
            counter(&report, "flow_preempted_total")
        );
    }

    #[test]
    fn closed_loop_sources_back_off_and_retry() {
        let spec = ServiceSpec::new("cl", TopologySpec::Hypercube { n: 3 })
            .arrivals(ArrivalSpec::poisson(6.0))
            .holding(HoldingSpec::Geometric { mean_rounds: 10.0 })
            .closed_loop(ClosedLoopSpec {
                sources: 6,
                think_mean_rounds: 2.0,
                backoff_base_rounds: 1,
                backoff_cap_rounds: 4,
            })
            .rounds(80)
            .window_rounds(40)
            .seed(17);
        let (report, journal) = run_service_traced(&spec, 0, 1 << 18);
        // The sources congest the small cube enough to retry.
        assert!(counter(&report, "flow_retry_total") > 0, "no retry fired");
        let queue_end = report.windows.last().unwrap().queue_depth_end;
        assert_eq!(
            counter(&report, "flow_arrivals_total"),
            counter(&report, "flow_admitted_total")
                + counter(&report, "flow_rejected_total")
                + queue_end
        );
        crate::trace::audit::audit_journal(&journal).expect("closed-loop stream conserved");
    }

    #[test]
    fn full_catalog_cells_are_deterministic_and_audit_clean() {
        for (i, spec) in builtin_service_catalog(true).iter().enumerate().skip(4) {
            let cell = u32::try_from(i).unwrap();
            let (a, ja) = run_service_traced(spec, cell, 1 << 18);
            let (b, jb) = run_service_traced(spec, cell, 1 << 18);
            assert_eq!(a, b, "{}", spec.name);
            assert_eq!(ja.render_jsonl(), jb.render_jsonl(), "{}", spec.name);
            crate::trace::audit::audit_journal(&ja)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn poisson_sampler_hits_the_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        for lambda in [0.5, 4.0, 40.0] {
            let draws = 4000;
            let total: u64 = (0..draws).map(|_| sample_poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / f64::from(draws);
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.05,
                "λ={lambda}: mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn geometric_sampler_hits_the_mean_and_floor() {
        let mut rng = StdRng::seed_from_u64(10);
        let draws = 4000;
        let total: u64 = (0..draws).map(|_| sample_geometric(&mut rng, 8.0)).sum();
        let mean = total as f64 / f64::from(draws);
        assert!((mean - 8.0).abs() < 0.5, "mean {mean}");
        assert!((0..100).all(|_| sample_geometric(&mut rng, 1.0) == 1));
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfCdf::new(16, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 16];
        for _ in 0..4000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[15]);
        // Exponent 0 degenerates to uniform: all vertices reachable.
        let flat = ZipfCdf::new(4, 0.0);
        let mut hit = [false; 4];
        for _ in 0..200 {
            hit[flat.sample(&mut rng) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    proptest! {
        /// Conservation + determinism over arbitrary small cells: the
        /// arrival ledger always balances and same seed ⇒ same bytes.
        #[test]
        fn prop_ledger_balances(
            seed in 0u64..1000,
            rate_tenths in 0u32..100,
            policy_pick in 0usize..3,
            mean_halves in 2u32..24,
        ) {
            let rate = f64::from(rate_tenths) / 10.0;
            let mean = f64::from(mean_halves) / 2.0;
            let policy = [
                AdmissionPolicy::Reject,
                AdmissionPolicy::QueueWithTimeout { max_wait_rounds: 3, capacity: 8 },
                AdmissionPolicy::DegradeToDetour { extra_hops: 2 },
            ][policy_pick];
            let spec = ServiceSpec::new("p", TopologySpec::Hypercube { n: 3 })
                .arrivals(ArrivalSpec::poisson(rate))
                .holding(HoldingSpec::Geometric { mean_rounds: mean })
                .policy(policy)
                .rounds(30)
                .window_rounds(10)
                .seed(seed);
            let report = run_service(&spec);
            let queue_end = report.windows.last().unwrap().queue_depth_end;
            prop_assert_eq!(
                counter(&report, "flow_arrivals_total"),
                counter(&report, "flow_admitted_total")
                    + counter(&report, "flow_rejected_total")
                    + queue_end
            );
            let again = run_service(&spec);
            prop_assert_eq!(report, again);
        }
    }
}
