//! Declarative scenario specs: *what* to simulate, decoupled from *how*
//! (the executor) and *how often* (the replication plan).
//!
//! A [`Scenario`] combines a topology, a workload, an originator-sweep
//! policy, a fault model, a link dilation, and a Monte Carlo replication
//! count with a base seed. Every piece is data, so scenario catalogs can
//! be enumerated, printed, and executed identically on 1 or N threads.

use shc_broadcast::{broadcast_scheme, hypercube_broadcast, Schedule};
use shc_core::SparseHypercube;
use shc_netsim::{ImplicitCubeNet, LinkId, LinkIndex, NetTopology};

/// Vertex ids, shared with `shc-netsim` / `shc-broadcast`.
pub type Vertex = u64;

/// Which network to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// The paper's `Construct_BASE(n, m)` sparse hypercube.
    SparseBase {
        /// Cube dimension.
        n: u32,
        /// Base dimension.
        m: u32,
    },
    /// The full binary `n`-cube `Q_n` (the dense baseline).
    Hypercube {
        /// Cube dimension.
        n: u32,
    },
}

impl TopologySpec {
    /// Builds the spec into a runnable topology. Both kinds are
    /// rule-generated end to end: no adjacency is materialized and the
    /// link index is closed-form cube arithmetic (shared by every
    /// replica's engine and overlay), so `Q_20`-scale scenarios cost
    /// per-engine scratch rather than hundreds of megabytes of frozen
    /// CSR tables.
    #[must_use]
    pub fn build(&self) -> BuiltTopology {
        let kind = match *self {
            TopologySpec::SparseBase { n, m } => {
                TopologyKind::Sparse(SparseHypercube::construct_base(n, m))
            }
            TopologySpec::Hypercube { n } => TopologyKind::Cube {
                n,
                net: ImplicitCubeNet::new(n),
            },
        };
        let index = match &kind {
            TopologyKind::Sparse(g) => NetTopology::link_index(g),
            TopologyKind::Cube { net, .. } => net.link_index(),
        };
        BuiltTopology { kind, index }
    }

    /// Human-readable label (`G_{10,3}` / `Q_10`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::SparseBase { n, m } => format!("G_{{{n},{m}}}"),
            TopologySpec::Hypercube { n } => format!("Q_{n}"),
        }
    }
}

/// The concrete network behind a [`BuiltTopology`] — rule-generated
/// either way (no adjacency materialization).
pub enum TopologyKind {
    /// Rule-generated sparse hypercube.
    Sparse(SparseHypercube),
    /// Rule-generated full hypercube (implicit `Q_n`).
    Cube {
        /// Cube dimension.
        n: u32,
        /// The implicit cube behind the [`NetTopology`] interface.
        net: ImplicitCubeNet,
    },
}

/// A built topology: the network plus its link index, obtained once at
/// construction and shared by every replica (engines index occupancy by
/// its link ids; fault overlays mask damage over the same ids). Carries
/// enough structure to also *generate* broadcast schedules, not just
/// answer edge queries.
pub struct BuiltTopology {
    kind: TopologyKind,
    index: LinkIndex,
}

impl BuiltTopology {
    /// The topology's own minimum-time broadcast schedule from `source`
    /// (the paper's constructive scheme on sparse hypercubes; recursive
    /// doubling on `Q_n`).
    #[must_use]
    pub fn schedule(&self, source: Vertex) -> Schedule {
        match &self.kind {
            TopologyKind::Sparse(g) => broadcast_scheme(g, source),
            TopologyKind::Cube { n, .. } => hypercube_broadcast(*n, source),
        }
    }

    /// The concrete network (for scheme-specific cross-checks).
    #[must_use]
    pub fn kind(&self) -> &TopologyKind {
        &self.kind
    }

    /// The underlying sparse hypercube, when this is one.
    #[must_use]
    pub fn sparse(&self) -> Option<&SparseHypercube> {
        match &self.kind {
            TopologyKind::Sparse(g) => Some(g),
            TopologyKind::Cube { .. } => None,
        }
    }
}

impl NetTopology for BuiltTopology {
    #[inline]
    fn num_vertices(&self) -> u64 {
        match &self.kind {
            TopologyKind::Sparse(g) => NetTopology::num_vertices(g),
            TopologyKind::Cube { net, .. } => net.num_vertices(),
        }
    }

    #[inline]
    fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        match &self.kind {
            TopologyKind::Sparse(g) => NetTopology::has_edge(g, u, v),
            TopologyKind::Cube { net, .. } => net.has_edge(u, v),
        }
    }

    #[inline]
    fn for_each_link(&self, u: Vertex, f: impl FnMut(Vertex, LinkId) -> bool) -> bool {
        match &self.kind {
            TopologyKind::Sparse(g) => NetTopology::for_each_link(g, u, f),
            TopologyKind::Cube { net, .. } => net.for_each_link(u, f),
        }
    }

    #[inline]
    fn link_id(&self, u: Vertex, v: Vertex) -> Option<LinkId> {
        match &self.kind {
            TopologyKind::Sparse(g) => NetTopology::link_id(g, u, v),
            TopologyKind::Cube { net, .. } => net.link_id(u, v),
        }
    }

    fn neighbors(&self, u: Vertex) -> Vec<Vertex> {
        match &self.kind {
            TopologyKind::Sparse(g) => NetTopology::neighbors(g, u),
            TopologyKind::Cube { net, .. } => net.neighbors(u),
        }
    }

    fn link_index(&self) -> LinkIndex {
        self.index.clone()
    }

    #[inline]
    fn cube_labeled(&self) -> bool {
        match &self.kind {
            TopologyKind::Sparse(g) => NetTopology::cube_labeled(g),
            TopologyKind::Cube { net, .. } => net.cube_labeled(),
        }
    }
}

/// The traffic a replica drives through the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `competing` simultaneous minimum-time broadcasts sharing the
    /// network (the primary one from the replica's originator, the rest
    /// from distinct random sources).
    Broadcast {
        /// Number of simultaneous broadcasts, `>= 1`.
        competing: usize,
    },
    /// Hot-spot traffic: `senders` random vertices each request an
    /// adaptive circuit to `target` in one round.
    HotSpot {
        /// The vertex everybody wants to reach.
        target: Vertex,
        /// Number of competing senders.
        senders: usize,
        /// Adaptive-routing length bound.
        max_len: u32,
    },
    /// Random pairwise traffic: `rounds` rounds of `pairs` adaptive
    /// (src, dst) circuit requests each.
    Permutation {
        /// Rounds to simulate.
        rounds: usize,
        /// Requests per round.
        pairs: usize,
        /// Adaptive-routing length bound.
        max_len: u32,
    },
    /// Bit-reversal permutation: every vertex requests a circuit to the
    /// bit-reversal of its `n`-bit index, `rounds` times (fixed points
    /// skipped). A classic adversarial pattern for dimension-ordered
    /// cubes — long paths, heavy link reuse. Deterministic: no RNG
    /// draws at all. Requires a power-of-two vertex count.
    BitReversal {
        /// Rounds to simulate.
        rounds: usize,
        /// Adaptive-routing length bound.
        max_len: u32,
    },
    /// Transpose permutation: every vertex requests a circuit to its
    /// `n`-bit index rotated by `n/2` bits (matrix-transpose traffic),
    /// `rounds` times, fixed points skipped. Deterministic, adversarial
    /// for cube routing. Requires a power-of-two vertex count.
    Transpose {
        /// Rounds to simulate.
        rounds: usize,
        /// Adaptive-routing length bound.
        max_len: u32,
    },
}

impl Workload {
    /// Human-readable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Workload::Broadcast { competing } => format!("broadcast x{competing}"),
            Workload::HotSpot {
                target, senders, ..
            } => format!("hot-spot {senders}->{target}"),
            Workload::Permutation { rounds, pairs, .. } => {
                format!("permutation {rounds}x{pairs}")
            }
            Workload::BitReversal { rounds, .. } => format!("bit-reversal x{rounds}"),
            Workload::Transpose { rounds, .. } => format!("transpose x{rounds}"),
        }
    }
}

/// How the replica index maps to a broadcast originator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OriginatorPolicy {
    /// Every replica broadcasts from the same vertex.
    Fixed(Vertex),
    /// Replica `r` broadcasts from vertex `r mod N` — with `N`
    /// replications this is the all-originators sweep.
    Sweep,
    /// Each replica draws a uniform originator from its own stream.
    Random,
}

/// Mid-run link-capacity change (a dilated link bank coming online or
/// degrading), applied before the given round begins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DilationShift {
    /// 0-based round index the shift takes effect at.
    pub at_round: usize,
    /// New per-link capacity, `>= 1`.
    pub dilation: u32,
}

/// The per-replica fault model: how much damage each Monte Carlo draw
/// injects before (and during) the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Uniformly random links to fail (without replacement).
    pub link_failures: usize,
    /// Uniformly random non-protected vertices to crash.
    pub node_crashes: usize,
    /// Optional mid-run dilation change.
    pub dilation_shift: Option<DilationShift>,
}

impl FaultSpec {
    /// No damage at all — the baseline model.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the spec injects nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }
}

/// A complete declarative scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Catalog name (also the report key).
    pub name: String,
    /// Network under test.
    pub topology: TopologySpec,
    /// Traffic to drive.
    pub workload: Workload,
    /// Originator sweep policy (broadcast workloads).
    pub originators: OriginatorPolicy,
    /// Per-replica fault model.
    pub faults: FaultSpec,
    /// Per-link circuit capacity (1 = the paper's model).
    pub dilation: u32,
    /// Monte Carlo replication count.
    pub replications: usize,
    /// Base seed; replica `r` runs on the `r`-th split of this stream.
    pub seed: u64,
    /// Admit each round through the propose-then-commit batch pipeline
    /// instead of one-at-a-time serial requests. Outcomes are
    /// deterministic at any intra-round worker count; broadcast
    /// workloads (fixed-path replay) ignore this flag.
    pub batch: bool,
}

impl Scenario {
    /// A baseline scenario: fixed originator 0, no faults, dilation 1,
    /// one replication, seed 0. Adjust fields or chain the builders.
    #[must_use]
    pub fn new(name: impl Into<String>, topology: TopologySpec, workload: Workload) -> Self {
        Self {
            name: name.into(),
            topology,
            workload,
            originators: OriginatorPolicy::Fixed(0),
            faults: FaultSpec::none(),
            dilation: 1,
            replications: 1,
            seed: 0,
            batch: false,
        }
    }

    /// Sets the originator policy.
    #[must_use]
    pub fn originators(mut self, policy: OriginatorPolicy) -> Self {
        self.originators = policy;
        self
    }

    /// Sets the fault model.
    #[must_use]
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the link dilation.
    ///
    /// # Panics
    /// Panics if `dilation == 0`.
    #[must_use]
    pub fn dilation(mut self, dilation: u32) -> Self {
        assert!(dilation >= 1, "links need capacity >= 1");
        self.dilation = dilation;
        self
    }

    /// Sets the Monte Carlo replication count.
    #[must_use]
    pub fn replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Routes each round through propose-then-commit batched admission
    /// (see [`crate::batch`]) instead of serial requests.
    #[must_use]
    pub fn batched(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_builds_and_schedules() {
        let sq = TopologySpec::SparseBase { n: 5, m: 2 }.build();
        assert_eq!(sq.num_vertices(), 32);
        let s = sq.schedule(3);
        assert_eq!(s.source, 3);
        assert_eq!(s.num_rounds(), 5);

        let q = TopologySpec::Hypercube { n: 4 }.build();
        assert_eq!(q.num_vertices(), 16);
        assert!(q.has_edge(0, 1));
        assert_eq!(q.schedule(0).num_rounds(), 4);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TopologySpec::SparseBase { n: 10, m: 3 }.label(), "G_{10,3}");
        assert_eq!(TopologySpec::Hypercube { n: 8 }.label(), "Q_8");
        assert_eq!(Workload::Broadcast { competing: 2 }.label(), "broadcast x2");
    }

    #[test]
    fn builder_chain() {
        let s = Scenario::new(
            "t",
            TopologySpec::Hypercube { n: 4 },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Sweep)
        .faults(FaultSpec {
            link_failures: 2,
            ..FaultSpec::none()
        })
        .dilation(2)
        .replications(16)
        .seed(9);
        assert_eq!(s.replications, 16);
        assert_eq!(s.dilation, 2);
        assert!(!s.faults.is_none());
        assert_eq!(s.originators, OriginatorPolicy::Sweep);
    }
}
