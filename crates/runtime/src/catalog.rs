//! The built-in scenario catalog: the sweeps the ROADMAP's "as many
//! scenarios as you can imagine" north star starts from. `exp_scenarios`
//! runs the whole catalog; the examples and experiments cherry-pick.

use crate::scenario::{
    DilationShift, FaultSpec, OriginatorPolicy, Scenario, TopologySpec, Workload,
};

/// Catalog seed: fixed so the binary's output is reproducible run-to-run.
pub const CATALOG_SEED: u64 = 0x5C_EA_21_07;

/// Builds the built-in catalog. `fast` shrinks topology sizes and
/// replication counts for debug builds and CI smoke runs.
#[must_use]
pub fn builtin_catalog(fast: bool) -> Vec<Scenario> {
    let (n, m) = if fast { (8, 3) } else { (10, 3) };
    let reps = if fast { 64 } else { 256 };
    let num_vertices = 1usize << n;
    vec![
        // 1. Theorem 4, exhaustively: every originator of SQ_n broadcasts
        //    in minimum time on an undamaged network — one replica per
        //    source, zero blocking expected.
        Scenario::new(
            "all-originators",
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Sweep)
        .replications(num_vertices)
        .seed(CATALOG_SEED),
        // 2. Monte Carlo robustness: k random link failures per replica,
        //    random originators — how much of the broadcast still lands.
        Scenario::new(
            "random-link-failures",
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Random)
        .faults(FaultSpec {
            link_failures: if fast { 8 } else { 16 },
            node_crashes: 0,
            dilation_shift: None,
        })
        .replications(reps)
        .seed(CATALOG_SEED + 1),
        // 3. Node crashes compound link loss: a sparser failure mode the
        //    paper's §5 robustness discussion raises.
        Scenario::new(
            "node-crashes",
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 1 },
        )
        .originators(OriginatorPolicy::Random)
        .faults(FaultSpec {
            link_failures: 4,
            node_crashes: if fast { 2 } else { 4 },
            dilation_shift: None,
        })
        .replications(reps)
        .seed(CATALOG_SEED + 2),
        // 4. Hot-spot traffic: everyone wants vertex 0; the sparse degree
        //    bounds how many circuits can land per round.
        Scenario::new(
            "hot-spot",
            TopologySpec::SparseBase { n, m },
            Workload::HotSpot {
                target: 0,
                senders: num_vertices / 4,
                max_len: n + 2,
            },
        )
        .replications(reps / 2)
        .seed(CATALOG_SEED + 3),
        // 5. Dilated multiedge network (§5): four competing broadcasts on
        //    dilation-2 links, with a mid-run upgrade to dilation 4.
        Scenario::new(
            "dilated-multiedge",
            TopologySpec::SparseBase { n, m },
            Workload::Broadcast { competing: 4 },
        )
        .originators(OriginatorPolicy::Random)
        .dilation(2)
        .faults(FaultSpec {
            link_failures: 0,
            node_crashes: 0,
            dilation_shift: Some(DilationShift {
                at_round: n as usize / 2,
                dilation: 4,
            }),
        })
        .replications(reps / 2)
        .seed(CATALOG_SEED + 4),
        // 6. The dense baseline under the same hot-spot pressure, for
        //    sparse-vs-Q_n comparisons in one catalog run.
        Scenario::new(
            "hot-spot-qn",
            TopologySpec::Hypercube { n },
            Workload::HotSpot {
                target: 0,
                senders: num_vertices / 4,
                max_len: n + 2,
            },
        )
        .replications(reps / 2)
        .seed(CATALOG_SEED + 3),
        // 7. Bit-reversal permutation through the propose-then-commit
        //    batch pipeline: the classic adversarial pattern for
        //    dimension-ordered cube routing, admitted round-by-round as
        //    one batch per round (parallel propose, serial commit).
        Scenario::new(
            "bit-reversal-batched",
            TopologySpec::SparseBase { n, m },
            Workload::BitReversal {
                rounds: if fast { 4 } else { 8 },
                max_len: 2 * n,
            },
        )
        .batched(true)
        .replications(reps / 8)
        .seed(CATALOG_SEED + 5),
        // 8. Transpose permutation, batched, on the dense baseline — the
        //    other canonical adversary, for sparse-vs-Q_n contrast.
        Scenario::new(
            "transpose-batched",
            TopologySpec::Hypercube { n },
            Workload::Transpose {
                rounds: if fast { 4 } else { 8 },
                max_len: 2 * n,
            },
        )
        .batched(true)
        .replications(reps / 8)
        .seed(CATALOG_SEED + 6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;

    #[test]
    fn catalog_names_are_unique() {
        let catalog = builtin_catalog(true);
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len());
    }

    #[test]
    fn fast_catalog_is_smaller() {
        let fast = builtin_catalog(true);
        let full = builtin_catalog(false);
        assert_eq!(fast.len(), full.len());
        for (f, s) in fast.iter().zip(&full) {
            assert!(f.replications <= s.replications, "{}", f.name);
        }
    }

    #[test]
    fn all_originators_scenario_is_lossless() {
        let catalog = builtin_catalog(true);
        let sweep = &catalog[0];
        assert_eq!(sweep.name, "all-originators");
        let report = run_scenario(sweep, 0);
        assert_eq!(report.replications, 256, "one replica per vertex");
        assert_eq!(report.total_blocked, 0, "Theorem 4, physically re-checked");
        assert!((report.mean_informed_fraction - 1.0).abs() < 1e-12);
    }
}
