//! Zero-dependency metrics façade: monotonic counters, gauges, and
//! fixed-bucket integer histograms behind a named registry with a JSON
//! snapshot — the observability surface of the long-lived service layer.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — everything is integer arithmetic (the only float
//!    is the final mean division, shared with [`MetricSummary`]), names
//!    are reported in registration order, and snapshots of equal state
//!    serialize to identical JSON bytes. Metrics therefore ride the same
//!    same-seed byte-identical contract as scenario reports.
//! 2. **Cheap on the hot path** — instruments are pre-registered and
//!    addressed by copyable ids (a `Vec` index), so recording is an
//!    array increment, never a string lookup or an allocation.
//! 3. **Integer-exact percentiles** — [`Histogram`] buckets are
//!    unit-width up to a saturation cap, so its nearest-rank percentiles
//!    equal [`MetricSummary::from_samples`] over the same (clamped)
//!    samples *exactly*, not approximately. The property tests pin this
//!    against an exact-sort reference.
//!
//! ```
//! use shc_runtime::metrics::Metrics;
//!
//! let mut m = Metrics::new();
//! let admitted = m.counter("flows_admitted_total");
//! let active = m.gauge("flows_active");
//! let latency = m.histogram("flow_path_hops", "hops", 64);
//! m.inc(admitted);
//! m.set(active, 1);
//! m.record(latency, 3);
//! let snap = m.snapshot();
//! assert_eq!(snap.counters[0].value, 1);
//! assert_eq!(snap.histograms[0].summary.p50, 3);
//! assert!(snap.to_json().contains("flow_path_hops"));
//! ```

use crate::aggregate::MetricSummary;
use serde::{Deserialize, Serialize};

/// Fixed-bucket histogram of `u64` samples with **unit-width** buckets
/// `0, 1, …, cap`; values above `cap` saturate into the top bucket (the
/// snapshot reports how many did). Within the cap, every statistic is
/// integer-exact: [`Histogram::summary`] equals
/// [`MetricSummary::from_samples`] over the clamped sample multiset.
///
/// ```
/// use shc_runtime::metrics::Histogram;
///
/// let mut h = Histogram::new(100);
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(50), 50);
/// assert_eq!(h.percentile(99), 99);
/// assert_eq!(h.summary().max, 100);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Saturation cap: the largest exactly-representable value.
    cap: u64,
    /// `counts[v]` = samples with (clamped) value `v`; length `cap + 1`.
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact integer sum of clamped samples.
    sum: u128,
    /// Smallest clamped sample (0 when empty).
    min: u64,
    /// Largest clamped sample (0 when empty).
    max: u64,
    /// Samples that exceeded the cap and saturated.
    saturated: u64,
}

impl Histogram {
    /// Creates a histogram with unit buckets `0..=cap`.
    ///
    /// # Panics
    /// Panics if `cap == 0` or `cap > 1 << 22` (the dense bucket vector
    /// is meant for bounded integer domains — hops, rounds, queue
    /// depths — not arbitrary magnitudes).
    #[must_use]
    pub fn new(cap: u64) -> Self {
        assert!(cap >= 1, "a histogram needs at least buckets 0 and 1");
        assert!(cap <= 1 << 22, "dense unit buckets cap out at 2^22");
        Self {
            cap,
            counts: vec![0; usize::try_from(cap + 1).expect("cap fits usize")],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            saturated: 0,
        }
    }

    /// Records one sample (values above the cap saturate).
    pub fn record(&mut self, value: u64) {
        if value > self.cap {
            self.saturated += 1;
        }
        let v = value.min(self.cap);
        self.counts[v as usize] += 1;
        self.sum += u128::from(v);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples that exceeded the cap and were clamped.
    #[must_use]
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Nearest-rank percentile over the recorded (clamped) samples —
    /// the same rank rule as [`MetricSummary`], computed from the bucket
    /// prefix sum instead of a sort. 0 when empty.
    ///
    /// # Panics
    /// Panics if `pct` is not in `1..=100`.
    #[must_use]
    pub fn percentile(&self, pct: u32) -> u64 {
        assert!((1..=100).contains(&pct), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        // rank = ceil(count · pct / 100), 1-based — identical to the
        // aggregate::nearest_rank fold over sorted samples.
        let rank = (u128::from(self.count) * u128::from(pct)).div_ceil(100);
        let mut seen: u128 = 0;
        for (v, &c) in self.counts.iter().enumerate() {
            seen += u128::from(c);
            if seen >= rank {
                return v as u64;
            }
        }
        self.max
    }

    /// Folds the histogram into the workspace-standard summary type —
    /// byte-identical to [`MetricSummary::from_samples`] over the
    /// clamped sample multiset.
    #[must_use]
    pub fn summary(&self) -> MetricSummary {
        if self.count == 0 {
            return MetricSummary::from_samples(&mut []);
        }
        MetricSummary {
            count: usize::try_from(self.count).expect("sample count fits usize"),
            min: self.min,
            max: self.max,
            mean: self.sum as f64 / self.count as f64,
            p50: self.percentile(50),
            p90: self.percentile(90),
            p99: self.percentile(99),
        }
    }

    /// Clears all samples, keeping the bucket layout (the per-window
    /// reset of the service layer).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
        self.saturated = 0;
    }

    /// The sparse bucket occupancy: `(value, count)` for every non-empty
    /// bucket, in ascending value order — the lossless serialization of
    /// the sample multiset that [`Metrics::merge`] folds bucket-wise.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<BucketCount> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| BucketCount {
                value: v as u64,
                count: c,
            })
            .collect()
    }

    /// Folds a snapshotted histogram into this one bucket-wise: exactly
    /// equivalent to replaying every clamped sample of the snapshot into
    /// this histogram ([`Metrics::merge`]'s property-tested contract).
    ///
    /// # Panics
    /// Panics if the bucket layouts differ (`cap` mismatch) or a bucket
    /// value exceeds the cap — merging across layouts would silently
    /// re-clamp and break the exactness contract.
    pub fn merge_snapshot(&mut self, snap: &HistogramSnapshot) {
        assert_eq!(
            self.cap, snap.bucket_cap,
            "histogram {:?}: merge across bucket caps",
            snap.name
        );
        let mut added: u64 = 0;
        let mut merged_min = u64::MAX;
        let mut merged_max = 0u64;
        for b in &snap.buckets {
            assert!(
                b.value <= self.cap,
                "histogram {:?}: bucket {} above cap {}",
                snap.name,
                b.value,
                self.cap
            );
            if b.count == 0 {
                continue;
            }
            self.counts[usize::try_from(b.value).expect("bucket fits usize")] += b.count;
            self.sum += u128::from(b.value) * u128::from(b.count);
            added += b.count;
            merged_min = merged_min.min(b.value);
            merged_max = merged_max.max(b.value);
        }
        if added > 0 {
            if self.count == 0 {
                self.min = merged_min;
                self.max = merged_max;
            } else {
                self.min = self.min.min(merged_min);
                self.max = self.max.max(merged_max);
            }
            self.count += added;
        }
        self.saturated += snap.saturated;
    }
}

/// Handle to a registered counter (a `Metrics` array index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// The metrics registry: named instruments registered once, recorded by
/// id, snapshotted as JSON. See the [module docs](self) for an example.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, String, Histogram)>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics if `name` is already registered on any instrument kind —
    /// metric names are a single flat namespace.
    fn assert_fresh(&self, name: &str) {
        let clash = self.counters.iter().any(|(n, _)| n == name)
            || self.gauges.iter().any(|(n, _)| n == name)
            || self.histograms.iter().any(|(n, _, _)| n == name);
        assert!(!clash, "metric name {name:?} registered twice");
    }

    /// Registers a monotonic counter (initial value 0).
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.assert_fresh(name);
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Increments a counter by `delta`.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Current counter value.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers a gauge (initial value 0).
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.assert_fresh(name);
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge to an absolute value.
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    /// Registers a unit-bucket histogram saturating at `cap`, with a
    /// human-readable `unit` (reported in snapshots).
    ///
    /// # Panics
    /// Panics if `name` is already registered, or on an invalid `cap`
    /// (see [`Histogram::new`]).
    pub fn histogram(&mut self, name: &str, unit: &str, cap: u64) -> HistogramId {
        self.assert_fresh(name);
        self.histograms
            .push((name.to_string(), unit.to_string(), Histogram::new(cap)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Records one histogram sample.
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].2.record(value);
    }

    /// Read access to a histogram (percentiles, counts).
    #[must_use]
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].2
    }

    /// Clears one histogram's samples (per-window reset).
    pub fn reset_histogram(&mut self, id: HistogramId) {
        self.histograms[id.0].2.reset();
    }

    /// A point-in-time snapshot of every instrument, in registration
    /// order — the JSON endpoint of the façade.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| CounterSnapshot {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, value)| GaugeSnapshot {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, unit, h)| HistogramSnapshot {
                    name: name.clone(),
                    unit: unit.clone(),
                    bucket_cap: h.cap,
                    saturated: h.saturated,
                    summary: h.summary(),
                    buckets: h.nonzero_buckets(),
                })
                .collect(),
        }
    }

    /// Folds a snapshot into this registry with a deterministic
    /// name-keyed rule per instrument kind:
    ///
    /// * **counters** add;
    /// * **gauges** keep the maximum (high-water semantics — the fold of
    ///   per-cell point-in-time gauges that makes sense run-wide);
    /// * **histograms** add bucket-wise via [`Histogram::merge_snapshot`],
    ///   which is property-tested equal to recording every sample into
    ///   one registry.
    ///
    /// Names missing from this registry are registered on first contact
    /// (in the snapshot's order), so folding N homogeneous per-cell
    /// snapshots into an empty registry yields instruments in the cells'
    /// registration order.
    ///
    /// # Panics
    /// Panics if a name is registered here as a *different* instrument
    /// kind (the flat-namespace rule), or on a histogram bucket-layout
    /// mismatch.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            let id = match self.counters.iter().position(|(n, _)| n == &c.name) {
                Some(i) => CounterId(i),
                None => self.counter(&c.name),
            };
            self.add(id, c.value);
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == &g.name) {
                Some((_, v)) => *v = (*v).max(g.value),
                None => {
                    let id = self.gauge(&g.name);
                    self.set(id, g.value);
                }
            }
        }
        for h in &other.histograms {
            let id = match self.histograms.iter().position(|(n, _, _)| n == &h.name) {
                Some(i) => HistogramId(i),
                None => self.histogram(&h.name, &h.unit, h.bucket_cap),
            };
            self.histograms[id.0].2.merge_snapshot(h);
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Monotonic value.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Last set value.
    pub value: i64,
}

/// One non-empty unit bucket in a [`HistogramSnapshot`]: `count`
/// samples recorded (clamped) value `value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket value (`0..=bucket_cap`).
    pub value: u64,
    /// Samples in the bucket (always ≥ 1 in snapshots).
    pub count: u64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Sample unit (`"hops"`, `"rounds"`, `"flows"`, …).
    pub unit: String,
    /// Saturation cap of the unit-width bucket layout.
    pub bucket_cap: u64,
    /// Samples that exceeded the cap and were clamped into the top
    /// bucket (nonzero means the top-end percentiles are lower bounds).
    pub saturated: u64,
    /// Integer-exact distribution summary of the clamped samples.
    pub summary: MetricSummary,
    /// Sparse bucket occupancy (non-empty buckets, ascending value) —
    /// lossless, so snapshots can be re-merged ([`Metrics::merge`])
    /// without losing percentile exactness.
    pub buckets: Vec<BucketCount>,
}

/// Serializable snapshot of a whole [`Metrics`] registry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Pretty JSON rendering (deterministic: registration order, integer
    /// fields, one final mean division per histogram).
    ///
    /// # Panics
    /// Never panics in practice; the snapshot is a plain data tree.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_matches_exact_sort_reference() {
        let mut h = Histogram::new(1000);
        let samples: Vec<u64> = (0..500).map(|i| (i * 37) % 997).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        let reference = MetricSummary::from_samples(&mut sorted);
        assert_eq!(h.summary(), reference);
        for pct in 1..=100 {
            let rank = (samples.len() as u64 * u64::from(pct)).div_ceil(100);
            let expect = sorted[(rank.max(1) - 1) as usize];
            assert_eq!(h.percentile(pct), expect, "p{pct}");
        }
    }

    #[test]
    fn saturation_clamps_into_the_top_bucket() {
        let mut h = Histogram::new(10);
        h.record(5);
        h.record(11);
        h.record(10_000);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.summary().max, 10);
        assert_eq!(h.percentile(100), 10);
        // Equal to the exact fold over the clamped multiset {5, 10, 10}.
        assert_eq!(h.summary(), MetricSummary::from_samples(&mut [5, 10, 10]));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new(8);
        assert!(h.is_empty());
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.summary(), MetricSummary::from_samples(&mut []));
    }

    #[test]
    fn reset_clears_samples_but_keeps_layout() {
        let mut h = Histogram::new(16);
        h.record(3);
        h.record(99);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.saturated(), 0);
        h.record(7);
        assert_eq!(h.summary(), MetricSummary::from_samples(&mut [7]));
    }

    #[test]
    fn registry_records_and_snapshots_in_registration_order() {
        let mut m = Metrics::new();
        let a = m.counter("alpha_total");
        let b = m.counter("beta_total");
        let g = m.gauge("active");
        let h = m.histogram("wait_rounds", "rounds", 32);
        m.inc(a);
        m.add(b, 5);
        m.set(g, -3);
        m.record(h, 4);
        m.record(h, 40); // saturates
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].name, "alpha_total");
        assert_eq!(snap.counters[1].value, 5);
        assert_eq!(snap.gauges[0].value, -3);
        assert_eq!(snap.histograms[0].saturated, 1);
        assert_eq!(snap.histograms[0].summary.count, 2);
        assert_eq!(snap.histograms[0].unit, "rounds");
        assert_eq!(m.counter_value(a), 1);
        assert_eq!(m.gauge_value(g), -3);
        assert_eq!(m.histogram_ref(h).count(), 2);
    }

    #[test]
    fn snapshot_json_round_trips_and_is_stable() {
        let mut m = Metrics::new();
        let c = m.counter("requests_total");
        m.add(c, 7);
        m.histogram("hops", "hops", 8);
        let snap = m.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        // Equal state ⇒ identical bytes (the determinism contract).
        assert_eq!(json, m.snapshot().to_json());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic_across_kinds() {
        let mut m = Metrics::new();
        m.counter("x");
        m.gauge("x");
    }

    #[test]
    #[should_panic(expected = "at least buckets 0 and 1")]
    fn cap_zero_construction_panics() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn cap_one_is_the_smallest_valid_layout() {
        let mut h = Histogram::new(1);
        h.record(0);
        h.record(1);
        h.record(7); // saturates into bucket 1
        assert_eq!(h.saturated(), 1);
        assert_eq!(h.percentile(1), 0);
        assert_eq!(h.percentile(100), 1);
        assert_eq!(h.summary(), MetricSummary::from_samples(&mut [0, 1, 1]));
    }

    #[test]
    fn empty_histogram_percentile_bounds_are_zero() {
        let h = Histogram::new(32);
        assert_eq!(h.percentile(1), 0);
        assert_eq!(h.percentile(100), 0);
        assert_eq!(h.saturated(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_zero_panics() {
        let _ = Histogram::new(8).percentile(0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_above_100_panics() {
        let _ = Histogram::new(8).percentile(101);
    }

    #[test]
    fn all_saturated_recordings_collapse_to_the_cap() {
        let mut h = Histogram::new(4);
        for v in [5u64, 100, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.saturated(), 3);
        assert_eq!(h.count(), 3);
        // Every statistic equals the exact fold over {4, 4, 4}.
        assert_eq!(h.summary(), MetricSummary::from_samples(&mut [4, 4, 4]));
        assert_eq!(h.percentile(1), 4);
        assert_eq!(h.percentile(100), 4);
        assert_eq!(
            h.nonzero_buckets(),
            vec![BucketCount { value: 4, count: 3 }]
        );
    }

    #[test]
    fn percentile_bounds_match_exact_sort_extremes() {
        // p100 is always the max; p1 is the min whenever count <= 100
        // (nearest rank: ceil(count/100) = 1).
        let mut h = Histogram::new(500);
        let mut samples: Vec<u64> = (0..90).map(|i| (i * 61) % 450 + 3).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        assert_eq!(h.percentile(100), *samples.last().unwrap());
        assert_eq!(h.percentile(100), h.summary().max);
        assert_eq!(h.percentile(1), samples[0]);
        assert_eq!(h.percentile(1), h.summary().min);
    }

    #[test]
    fn snapshot_buckets_are_sparse_ascending_and_lossless() {
        let mut m = Metrics::new();
        let h = m.histogram("hops", "hops", 64);
        for v in [3u64, 3, 9, 70] {
            m.record(h, v);
        }
        let snap = &m.snapshot().histograms[0];
        assert_eq!(
            snap.buckets,
            vec![
                BucketCount { value: 3, count: 2 },
                BucketCount { value: 9, count: 1 },
                BucketCount {
                    value: 64,
                    count: 1
                },
            ]
        );
        // Lossless: rebuilding from the buckets reproduces the summary.
        let mut rebuilt = Histogram::new(64);
        rebuilt.merge_snapshot(snap);
        assert_eq!(rebuilt.summary(), snap.summary);
        assert_eq!(rebuilt.saturated(), snap.saturated);
    }

    #[test]
    fn merge_folds_counters_gauges_and_histograms() {
        let mut a = Metrics::new();
        let ca = a.counter("requests_total");
        let ga = a.gauge("active");
        let ha = a.histogram("hops", "hops", 16);
        a.add(ca, 10);
        a.set(ga, 5);
        a.record(ha, 2);

        let mut b = Metrics::new();
        let cb = b.counter("requests_total");
        let gb = b.gauge("active");
        let hb = b.histogram("hops", "hops", 16);
        b.add(cb, 7);
        b.set(gb, 3);
        b.record(hb, 9);
        // A name only `b` has is registered on first contact.
        let only_b = b.counter("timeouts_total");
        b.inc(only_b);

        a.merge(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counters[0].value, 17, "counters add");
        assert_eq!(snap.counters[1].name, "timeouts_total");
        assert_eq!(snap.counters[1].value, 1);
        assert_eq!(snap.gauges[0].value, 5, "gauges keep the high-water");
        assert_eq!(snap.histograms[0].summary.count, 2);
        assert_eq!(snap.histograms[0].summary.max, 9);

        // Max semantics is symmetric: merging a higher gauge raises it.
        let mut c = Metrics::new();
        let gc = c.gauge("active");
        c.set(gc, 42);
        a.merge(&c.snapshot());
        assert_eq!(a.snapshot().gauges[0].value, 42);
    }

    #[test]
    #[should_panic(expected = "merge across bucket caps")]
    fn merge_rejects_bucket_layout_mismatch() {
        let mut a = Metrics::new();
        a.histogram("hops", "hops", 16);
        let mut b = Metrics::new();
        b.histogram("hops", "hops", 32);
        a.merge(&b.snapshot());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn merge_rejects_cross_kind_name_clash() {
        let mut a = Metrics::new();
        a.counter("x");
        let mut b = Metrics::new();
        b.gauge("x");
        a.merge(&b.snapshot());
    }

    proptest::proptest! {
        /// [`Metrics::merge`] is exactly "record everything into one
        /// registry": splitting arbitrary samples across two registries
        /// and merging their snapshots into a third equals recording the
        /// concatenation directly (counters and histograms; gauges have
        /// max semantics, pinned deterministically above).
        #[test]
        fn prop_merge_equals_single_registry(
            left in proptest::collection::vec(0u64..300, 0..80),
            right in proptest::collection::vec(0u64..300, 0..80),
            cap in 1u64..256,
        ) {
            let mut combined = Metrics::new();
            let cc = combined.counter("samples_total");
            let hc = combined.histogram("values", "v", cap);
            for &s in left.iter().chain(&right) {
                combined.add(cc, 1);
                combined.record(hc, s);
            }

            let mut fold = Metrics::new();
            for part in [&left, &right] {
                let mut m = Metrics::new();
                let c = m.counter("samples_total");
                let h = m.histogram("values", "v", cap);
                for &s in part.iter() {
                    m.add(c, 1);
                    m.record(h, s);
                }
                fold.merge(&m.snapshot());
            }
            proptest::prop_assert_eq!(fold.snapshot(), combined.snapshot());
            proptest::prop_assert_eq!(
                fold.snapshot().to_json(),
                combined.snapshot().to_json()
            );
        }
    }

    proptest::proptest! {
        /// The bucketed fold is not an approximation: for arbitrary
        /// samples and caps, every summary field equals the exact-sort
        /// reference over the clamped multiset.
        #[test]
        fn prop_histogram_equals_exact_sort(
            samples in proptest::collection::vec(0u64..5000, 0..200),
            cap in 1u64..4096,
        ) {
            let mut h = Histogram::new(cap);
            for &s in &samples {
                h.record(s);
            }
            let mut clamped: Vec<u64> = samples.iter().map(|&s| s.min(cap)).collect();
            let reference = MetricSummary::from_samples(&mut clamped);
            proptest::prop_assert_eq!(h.summary(), reference);
            for pct in [1u32, 25, 50, 75, 90, 99, 100] {
                let rank = (clamped.len() as u64 * u64::from(pct)).div_ceil(100);
                let expect = if clamped.is_empty() {
                    0
                } else {
                    clamped[(rank.max(1) - 1) as usize]
                };
                proptest::prop_assert_eq!(h.percentile(pct), expect);
            }
        }
    }
}
