//! Deterministic structured-event tracing: the journal every layer of
//! the stack (engine admissions, flow lifecycle, service queueing, fault
//! activation) reports through, and the audit that replays it.
//!
//! Design constraints, in order:
//!
//! 1. **Simulated time only.** Records are stamped `(cell, round, seq)` —
//!    a cell id chosen by the driver, the engine's round index, and a
//!    per-round event sequence number. No wall clock is ever read, so a
//!    journal is a pure function of the (deterministic) decision
//!    sequence: same seed ⇒ byte-identical JSONL for 1 or N worker
//!    threads. This is the same contract `tests/runtime_determinism.rs`
//!    pins for reports, extended to per-decision granularity. Wall-clock
//!    telemetry lives elsewhere ([`executor`](crate::executor)
//!    utilization) and never enters a journal.
//! 2. **Zero dependencies.** The JSONL exporter is hand-rolled string
//!    building over integer fields — no serde round trip, no float
//!    formatting, fixed field order.
//! 3. **Bounded memory.** [`TraceJournal`] is a ring: beyond `capacity`
//!    the oldest records are dropped **with explicit accounting**
//!    ([`TraceJournal::dropped`]) — never silently, and the audit refuses
//!    to certify an incomplete journal.
//!
//! [`TraceJournal`] implements the engine-side
//! [`EngineProbe`] (admission decisions, flow
//! lifecycle, search effort arrive automatically once attached via
//! [`Engine::with_probe`](shc_netsim::Engine::with_probe)) and the
//! runtime-side [`RunProbe`] extension (queueing, faults, round
//! summaries, pushed by the service/runner drivers).
//!
//! ```
//! use shc_netsim::{Engine, MaterializedNet};
//! use shc_graph::builders::cycle;
//! use shc_runtime::trace::{audit, TraceJournal};
//!
//! let net = MaterializedNet::new(cycle(6));
//! let mut sim = Engine::with_probe(&net, 1, TraceJournal::new(0, 1024));
//! sim.begin_round();
//! assert!(sim.request(0, 2, 4).is_established());
//! let (_stats, journal) = sim.finish_with_probe();
//! assert_eq!(journal.len(), 1);
//! assert_eq!(journal.dropped(), 0);
//! let report = audit::audit_journal(&journal).expect("consistent journal");
//! assert_eq!(report.requests, 1);
//! assert!(journal.render_jsonl().contains("\"decision\":\"established\""));
//! ```

use shc_netsim::topology::Vertex;
use shc_netsim::{BlockReason, EngineProbe, LinkId, NoProbe, RequestProbe, RouteSearch};
use std::collections::VecDeque;

/// How an admission decision concluded, flattened for the journal
/// (carries the [`BlockReason`] payload where one exists).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestDecision {
    /// Circuit established.
    Established,
    /// Blocked: some candidate link had no spare capacity.
    Saturated,
    /// Blocked: no route within the length bound.
    NoRoute,
    /// Blocked: a supplied path hop is not a live edge.
    NotAnEdge {
        /// Offending hop's tail.
        u: Vertex,
        /// Offending hop's head.
        v: Vertex,
    },
}

impl RequestDecision {
    fn from_outcome(hops: Option<u32>, reason: Option<&BlockReason>) -> Self {
        match (hops, reason) {
            (Some(_), _) => Self::Established,
            (None, Some(BlockReason::Saturated)) => Self::Saturated,
            (None, Some(BlockReason::NoRoute)) => Self::NoRoute,
            (None, Some(BlockReason::NotAnEdge((u, v)))) => Self::NotAnEdge { u: *u, v: *v },
            (None, None) => unreachable!("an admission is established or blocked"),
        }
    }

    /// The journal's stable wire name for this decision.
    #[must_use]
    pub fn wire_name(&self) -> &'static str {
        match self {
            Self::Established => "established",
            Self::Saturated => "saturated",
            Self::NoRoute => "no_route",
            Self::NotAnEdge { .. } => "not_an_edge",
        }
    }
}

/// Search effort attached to adaptive admission events (a copy of the
/// engine's [`shc_netsim::SearchStats`] in journal-owned form).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchTrace {
    /// Which search ran.
    pub strategy: RouteSearch,
    /// Vertices expanded before the search concluded.
    pub nodes_expanded: u32,
    /// Peak frontier size.
    pub frontier_peak: u32,
}

/// The journal's stable wire name for a search strategy.
#[must_use]
pub fn strategy_wire_name(s: RouteSearch) -> &'static str {
    match s {
        RouteSearch::Unidirectional => "uni",
        RouteSearch::Bidirectional => "bidi",
        RouteSearch::AStarCube => "astar",
    }
}

/// Engine-side gauge values a driver passes to
/// [`RunProbe::on_round_end`], recorded verbatim and cross-checked by
/// the audit against the event-derived flow ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundEndInfo {
    /// Active (admitted, unreleased) flows after the round.
    pub active_flows: u64,
    /// Links held by active flows after the round.
    pub held_link_hops: u64,
    /// Admission-queue depth after the round (0 for queueless drivers).
    pub queue_depth: u64,
}

/// One journal event. Everything is integers over simulated time —
/// see the [module docs](self) for the determinism contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One admission decision (adaptive or fixed-path).
    Request {
        /// Source vertex.
        src: Vertex,
        /// Destination vertex.
        dst: Vertex,
        /// How the decision concluded.
        decision: RequestDecision,
        /// Route length when established.
        hops: Option<u32>,
        /// First link skipped for lack of capacity, when any.
        rejecting_link: Option<LinkId>,
        /// Search effort (adaptive requests only).
        search: Option<SearchTrace>,
    },
    /// Batched admission: the proposal for `src → dst` lost a
    /// link-capacity conflict against an earlier-sequenced commit in
    /// re-route wave `wave`. The request is not concluded — it changes
    /// no admission tally, and a concluding [`Request`](Self::Request)
    /// event for the same pair follows in a later wave. Stamped with
    /// the commit order (not thread order), so journals stay
    /// byte-identical at any propose worker count.
    BatchConflict {
        /// Re-route wave (0 is the initial propose pass).
        wave: u32,
        /// Source vertex.
        src: Vertex,
        /// Destination vertex.
        dst: Vertex,
    },
    /// A flow was admitted into slab slot `flow`, holding `hops` links.
    FlowEstablished {
        /// Engine slab slot.
        flow: u32,
        /// Links held.
        hops: u32,
    },
    /// The flow in slab slot `flow` released its `hops` links.
    FlowReleased {
        /// Engine slab slot.
        flow: u32,
        /// Links released.
        hops: u32,
    },
    /// The flow in slab slot `flow` was torn down by a link fault,
    /// freeing its `hops` links.
    FlowTornDown {
        /// Engine slab slot.
        flow: u32,
        /// Links freed.
        hops: u32,
    },
    /// The flow in slab slot `flow` was preempted by a higher-priority
    /// admission, freeing its `hops` links.
    FlowPreempted {
        /// Engine slab slot.
        flow: u32,
        /// Links freed.
        hops: u32,
    },
    /// The flow in slab slot `flow` was rerouted around damage: its
    /// `old_hops`-link circuit was replaced in place by `new_hops` links.
    FlowRerouted {
        /// Engine slab slot.
        flow: u32,
        /// Links held before the reroute.
        old_hops: u32,
        /// Links held after the reroute.
        new_hops: u32,
    },
    /// Dynamic fault: the link `{u, v}` failed mid-run with `affected`
    /// flows holding it (their teardown/reroute events follow).
    LinkFailed {
        /// Endpoint.
        u: Vertex,
        /// Endpoint.
        v: Vertex,
        /// Flows that were holding the link when it failed.
        affected: u32,
    },
    /// Dynamic repair: the link `{u, v}` came back into service.
    LinkRepaired {
        /// Endpoint.
        u: Vertex,
        /// Endpoint.
        v: Vertex,
    },
    /// The service queued an arrival instead of admitting it.
    FlowQueued {
        /// Source vertex.
        src: Vertex,
        /// Destination vertex.
        dst: Vertex,
    },
    /// A queued arrival was admitted after `waited` rounds.
    QueueAdmit {
        /// Rounds spent queued.
        waited: u64,
    },
    /// A queued arrival timed out after `waited` rounds.
    FlowTimeout {
        /// Rounds spent queued.
        waited: u64,
    },
    /// An arrival was rejected because the queue was full.
    QueueOverflow,
    /// Fault activation: the link `{u, v}` is dead for this run.
    FaultLink {
        /// Endpoint.
        u: Vertex,
        /// Endpoint.
        v: Vertex,
    },
    /// Fault activation: vertex `v` is crashed for this run.
    FaultNode {
        /// Crashed vertex.
        v: Vertex,
    },
    /// A mid-run dilation shift took effect.
    DilationShift {
        /// New per-link capacity.
        dilation: u32,
    },
    /// End-of-round summary: the journal's own per-round admission
    /// tallies plus the driver-supplied engine gauges.
    RoundEnd {
        /// Admission decisions this round (journal tally).
        requests: u64,
        /// … of which established.
        established: u64,
        /// … of which blocked.
        blocked: u64,
        /// Driver-supplied gauges, audit-checked against the ledger.
        info: RoundEndInfo,
    },
}

/// One stamped record: `(cell, round, seq)` + event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Driver-chosen cell id (catalog cell, replica index, …).
    pub cell: u32,
    /// Engine round index (0-based; pre-round events carry round 0).
    pub round: u64,
    /// Per-round event sequence number (0-based).
    pub seq: u32,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded deterministic event journal — see the [module docs](self).
///
/// Implements [`EngineProbe`] (attach with
/// [`Engine::with_probe`](shc_netsim::Engine::with_probe)) and
/// [`RunProbe`]; drivers push runtime-side events through
/// [`Engine::probe_mut`](shc_netsim::Engine::probe_mut).
#[derive(Clone, Debug)]
pub struct TraceJournal {
    cell: u32,
    capacity: usize,
    events: VecDeque<TraceRecord>,
    dropped: u64,
    round: u64,
    seq: u32,
    // Per-round admission tallies for the RoundEnd summary.
    round_requests: u64,
    round_established: u64,
    round_blocked: u64,
}

impl TraceJournal {
    /// Creates an empty journal for `cell` holding at most `capacity`
    /// records (older records are dropped, with accounting, beyond it).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(cell: u32, capacity: usize) -> Self {
        assert!(capacity >= 1, "a journal needs room for at least 1 event");
        Self {
            cell,
            capacity,
            events: VecDeque::new(),
            dropped: 0,
            round: 0,
            seq: 0,
            round_requests: 0,
            round_established: 0,
            round_blocked: 0,
        }
    }

    /// The cell id this journal stamps.
    #[must_use]
    pub fn cell(&self) -> u32 {
        self.cell
    }

    /// Records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.events.iter()
    }

    /// Stamps and appends one event, dropping the oldest record (with
    /// accounting) when the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceRecord {
            cell: self.cell,
            round: self.round,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Moves the stamp to `round`, resetting the sequence counter.
    /// Idempotent: re-announcing the current round (e.g. fault events
    /// pushed at round 0 before the engine's first `begin_round` also
    /// reports round 0) does not restart the sequence.
    fn set_round(&mut self, round: u64) {
        if round != self.round {
            self.round = round;
            self.seq = 0;
            self.round_requests = 0;
            self.round_established = 0;
            self.round_blocked = 0;
        }
    }

    /// Renders the journal as JSONL: one record per line in stamp order,
    /// then one `journal_summary` line with retention/drop accounting.
    /// Hand-rolled fixed-order integer fields — equal journals render to
    /// identical bytes.
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        self.render_jsonl_into(&mut out);
        out
    }

    /// [`render_jsonl`](Self::render_jsonl) appending into `out` — the
    /// form multi-cell exporters use to concatenate journals.
    pub fn render_jsonl_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        for r in &self.events {
            let _ = write!(
                out,
                "{{\"cell\":{},\"round\":{},\"seq\":{}",
                r.cell, r.round, r.seq
            );
            match &r.event {
                TraceEvent::Request {
                    src,
                    dst,
                    decision,
                    hops,
                    rejecting_link,
                    search,
                } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"request\",\"src\":{src},\"dst\":{dst},\"decision\":\"{}\"",
                        decision.wire_name()
                    );
                    if let RequestDecision::NotAnEdge { u, v } = decision {
                        let _ = write!(out, ",\"bad_edge\":[{u},{v}]");
                    }
                    if let Some(h) = hops {
                        let _ = write!(out, ",\"hops\":{h}");
                    }
                    if let Some(l) = rejecting_link {
                        let _ = write!(out, ",\"rejecting_link\":{l}");
                    }
                    if let Some(s) = search {
                        let _ = write!(
                            out,
                            ",\"search\":{{\"strategy\":\"{}\",\"expanded\":{},\"frontier_peak\":{}}}",
                            strategy_wire_name(s.strategy),
                            s.nodes_expanded,
                            s.frontier_peak
                        );
                    }
                }
                TraceEvent::BatchConflict { wave, src, dst } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"batch_conflict\",\"wave\":{wave},\"src\":{src},\"dst\":{dst}"
                    );
                }
                TraceEvent::FlowEstablished { flow, hops } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"flow_established\",\"flow\":{flow},\"hops\":{hops}"
                    );
                }
                TraceEvent::FlowReleased { flow, hops } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"flow_released\",\"flow\":{flow},\"hops\":{hops}"
                    );
                }
                TraceEvent::FlowTornDown { flow, hops } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"flow_torn_down\",\"flow\":{flow},\"hops\":{hops}"
                    );
                }
                TraceEvent::FlowPreempted { flow, hops } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"flow_preempted\",\"flow\":{flow},\"hops\":{hops}"
                    );
                }
                TraceEvent::FlowRerouted {
                    flow,
                    old_hops,
                    new_hops,
                } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"reroute\",\"flow\":{flow},\"old_hops\":{old_hops},\"new_hops\":{new_hops}"
                    );
                }
                TraceEvent::LinkFailed { u, v, affected } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"fault_under_load\",\"u\":{u},\"v\":{v},\"affected\":{affected}"
                    );
                }
                TraceEvent::LinkRepaired { u, v } => {
                    let _ = write!(out, ",\"type\":\"repair\",\"u\":{u},\"v\":{v}");
                }
                TraceEvent::FlowQueued { src, dst } => {
                    let _ = write!(out, ",\"type\":\"flow_queued\",\"src\":{src},\"dst\":{dst}");
                }
                TraceEvent::QueueAdmit { waited } => {
                    let _ = write!(out, ",\"type\":\"queue_admit\",\"waited\":{waited}");
                }
                TraceEvent::FlowTimeout { waited } => {
                    let _ = write!(out, ",\"type\":\"flow_timeout\",\"waited\":{waited}");
                }
                TraceEvent::QueueOverflow => {
                    let _ = write!(out, ",\"type\":\"queue_overflow\"");
                }
                TraceEvent::FaultLink { u, v } => {
                    let _ = write!(out, ",\"type\":\"fault_link\",\"u\":{u},\"v\":{v}");
                }
                TraceEvent::FaultNode { v } => {
                    let _ = write!(out, ",\"type\":\"fault_node\",\"v\":{v}");
                }
                TraceEvent::DilationShift { dilation } => {
                    let _ = write!(out, ",\"type\":\"dilation_shift\",\"dilation\":{dilation}");
                }
                TraceEvent::RoundEnd {
                    requests,
                    established,
                    blocked,
                    info,
                } => {
                    let _ = write!(
                        out,
                        ",\"type\":\"round_end\",\"requests\":{requests},\"established\":{established},\"blocked\":{blocked},\"active_flows\":{},\"held_link_hops\":{},\"queue_depth\":{}",
                        info.active_flows, info.held_link_hops, info.queue_depth
                    );
                }
            }
            out.push_str("}\n");
        }
        let _ = writeln!(
            out,
            "{{\"cell\":{},\"type\":\"journal_summary\",\"events\":{},\"dropped\":{}}}",
            self.cell,
            self.events.len(),
            self.dropped
        );
    }
}

impl EngineProbe for TraceJournal {
    fn on_round_begin(&mut self, round: u64) {
        self.set_round(round);
    }

    fn on_request(&mut self, req: &RequestProbe<'_>) {
        let decision = RequestDecision::from_outcome(req.hops, req.reason);
        self.round_requests += 1;
        if req.hops.is_some() {
            self.round_established += 1;
        } else {
            self.round_blocked += 1;
        }
        let search = req.search.map(|s| SearchTrace {
            strategy: s.strategy,
            nodes_expanded: s.nodes_expanded,
            frontier_peak: s.frontier_peak,
        });
        self.push(TraceEvent::Request {
            src: req.src,
            dst: req.dst,
            decision,
            hops: req.hops,
            rejecting_link: req.rejecting_link,
            search,
        });
    }

    fn on_flow_established(&mut self, flow: u32, hops: u32) {
        self.push(TraceEvent::FlowEstablished { flow, hops });
    }

    fn on_flow_released(&mut self, flow: u32, hops: u32) {
        self.push(TraceEvent::FlowReleased { flow, hops });
    }

    fn on_flow_torn_down(&mut self, flow: u32, hops: u32) {
        self.push(TraceEvent::FlowTornDown { flow, hops });
    }

    fn on_flow_preempted(&mut self, flow: u32, hops: u32) {
        self.push(TraceEvent::FlowPreempted { flow, hops });
    }

    fn on_flow_rerouted(&mut self, flow: u32, old_hops: u32, new_hops: u32) {
        self.push(TraceEvent::FlowRerouted {
            flow,
            old_hops,
            new_hops,
        });
    }

    fn on_batch_conflict(&mut self, wave: u32, src: Vertex, dst: Vertex) {
        self.push(TraceEvent::BatchConflict { wave, src, dst });
    }
}

/// Runtime-side probe extension: events the engine cannot see — service
/// queueing decisions, fault activation, round summaries — pushed by the
/// drivers through [`Engine::probe_mut`](shc_netsim::Engine::probe_mut).
/// All methods default to no-ops, and [`NoProbe`] implements the trait
/// empty, so untraced drivers monomorphize to the exact untraced code.
pub trait RunProbe: EngineProbe {
    /// The service queued an arrival instead of admitting it.
    fn on_flow_queued(&mut self, src: Vertex, dst: Vertex) {
        let _ = (src, dst);
    }

    /// A queued arrival was admitted after `waited` rounds.
    fn on_queue_admit(&mut self, waited: u64) {
        let _ = waited;
    }

    /// A queued arrival timed out after `waited` rounds.
    fn on_flow_timeout(&mut self, waited: u64) {
        let _ = waited;
    }

    /// An arrival was rejected because the queue was full.
    fn on_queue_overflow(&mut self) {}

    /// Fault activation: the link `{u, v}` is dead for this run.
    fn on_fault_link(&mut self, u: Vertex, v: Vertex) {
        let _ = (u, v);
    }

    /// Fault activation: vertex `v` is crashed for this run.
    fn on_fault_node(&mut self, v: Vertex) {
        let _ = v;
    }

    /// Dynamic fault: the link `{u, v}` failed mid-run with `affected`
    /// flows holding it. Pushed by the service driver *before* the
    /// per-flow teardown/reroute events it triggers.
    fn on_fault_under_load(&mut self, u: Vertex, v: Vertex, affected: u32) {
        let _ = (u, v, affected);
    }

    /// Dynamic repair: the link `{u, v}` came back into service.
    fn on_link_repaired(&mut self, u: Vertex, v: Vertex) {
        let _ = (u, v);
    }

    /// A mid-run dilation shift took effect.
    fn on_dilation_shift(&mut self, dilation: u32) {
        let _ = dilation;
    }

    /// End-of-round driver summary with engine gauge values.
    fn on_round_end(&mut self, info: &RoundEndInfo) {
        let _ = info;
    }
}

impl RunProbe for NoProbe {}

impl RunProbe for TraceJournal {
    fn on_flow_queued(&mut self, src: Vertex, dst: Vertex) {
        self.push(TraceEvent::FlowQueued { src, dst });
    }

    fn on_queue_admit(&mut self, waited: u64) {
        self.push(TraceEvent::QueueAdmit { waited });
    }

    fn on_flow_timeout(&mut self, waited: u64) {
        self.push(TraceEvent::FlowTimeout { waited });
    }

    fn on_queue_overflow(&mut self) {
        self.push(TraceEvent::QueueOverflow);
    }

    fn on_fault_link(&mut self, u: Vertex, v: Vertex) {
        self.push(TraceEvent::FaultLink { u, v });
    }

    fn on_fault_node(&mut self, v: Vertex) {
        self.push(TraceEvent::FaultNode { v });
    }

    fn on_fault_under_load(&mut self, u: Vertex, v: Vertex, affected: u32) {
        self.push(TraceEvent::LinkFailed { u, v, affected });
    }

    fn on_link_repaired(&mut self, u: Vertex, v: Vertex) {
        self.push(TraceEvent::LinkRepaired { u, v });
    }

    fn on_dilation_shift(&mut self, dilation: u32) {
        self.push(TraceEvent::DilationShift { dilation });
    }

    fn on_round_end(&mut self, info: &RoundEndInfo) {
        let summary = TraceEvent::RoundEnd {
            requests: self.round_requests,
            established: self.round_established,
            blocked: self.round_blocked,
            info: *info,
        };
        self.push(summary);
    }
}

pub mod audit {
    //! Trace-backed invariant checking: replay a journal and assert that
    //! the event stream is internally conserved — stamps are monotone,
    //! admission tallies balance, flow holds balance releases, and the
    //! driver-reported occupancy gauges match the event-derived flow
    //! ledger exactly. Run automatically by the `exp_*` binaries in
    //! `--seed-check` mode.

    use super::{RequestDecision, TraceEvent, TraceJournal};
    use std::collections::{HashMap, HashSet};
    use std::fmt;

    /// Totals over a successfully audited journal (or set of journals).
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct AuditReport {
        /// Records replayed.
        pub events: u64,
        /// Admission decisions seen.
        pub requests: u64,
        /// … of which established.
        pub established: u64,
        /// … of which blocked.
        pub blocked: u64,
        /// Flow admissions seen.
        pub flows_opened: u64,
        /// Flow releases seen.
        pub flows_released: u64,
        /// Fault-triggered flow teardowns seen.
        pub flows_torn_down: u64,
        /// Admission-control preemptions seen.
        pub flows_preempted: u64,
        /// In-place reroutes seen.
        pub flows_rerouted: u64,
        /// Batched-admission capacity conflicts seen (neutral: a
        /// conflicted request is still pending and concludes — and is
        /// tallied — in a later wave's `Request` event).
        pub batch_conflicts: u64,
        /// Dynamic link failures seen.
        pub links_failed: u64,
        /// Dynamic link repairs seen.
        pub links_repaired: u64,
        /// Round-end summaries cross-checked against the ledger.
        pub rounds_checked: u64,
    }

    impl AuditReport {
        /// Folds another report's totals into this one.
        pub fn absorb(&mut self, other: &AuditReport) {
            self.events += other.events;
            self.requests += other.requests;
            self.established += other.established;
            self.blocked += other.blocked;
            self.flows_opened += other.flows_opened;
            self.flows_released += other.flows_released;
            self.flows_torn_down += other.flows_torn_down;
            self.flows_preempted += other.flows_preempted;
            self.flows_rerouted += other.flows_rerouted;
            self.batch_conflicts += other.batch_conflicts;
            self.links_failed += other.links_failed;
            self.links_repaired += other.links_repaired;
            self.rounds_checked += other.rounds_checked;
        }
    }

    /// An invariant violation, located by `(cell, round)`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct AuditError {
        /// Cell id of the offending journal.
        pub cell: u32,
        /// Round stamp where the violation was detected.
        pub round: u64,
        /// Human-readable description of the violated invariant.
        pub message: String,
    }

    impl fmt::Display for AuditError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "trace audit failed (cell {}, round {}): {}",
                self.cell, self.round, self.message
            )
        }
    }

    impl std::error::Error for AuditError {}

    /// Replays one journal and checks every invariant. Fails fast on a
    /// journal with dropped records: conservation cannot be certified
    /// from an incomplete stream.
    ///
    /// # Errors
    /// Returns the first violated invariant with `(cell, round)` context.
    pub fn audit_journal(journal: &TraceJournal) -> Result<AuditReport, AuditError> {
        let cell = journal.cell();
        let fail = |round: u64, message: String| AuditError {
            cell,
            round,
            message,
        };
        if journal.dropped() > 0 {
            return Err(fail(
                0,
                format!(
                    "journal dropped {} records; audit needs a complete stream \
                     (raise the journal capacity)",
                    journal.dropped()
                ),
            ));
        }
        let mut report = AuditReport::default();
        // Stamp monotonicity state.
        let mut last: Option<(u64, u32)> = None;
        // Per-round admission tallies recomputed from Request events.
        let mut round_requests: u64 = 0;
        let mut round_established: u64 = 0;
        let mut round_blocked: u64 = 0;
        let mut tally_round: u64 = 0;
        // Flow ledger: open slab slot -> held hops.
        let mut open_flows: HashMap<u32, u32> = HashMap::new();
        let mut held_hops: u64 = 0;
        // Queue ledger.
        let mut queue_depth: i64 = 0;
        // Dynamic-fault ledger: currently-failed links, endpoint-normalized.
        let mut failed_links: HashSet<(u64, u64)> = HashSet::new();
        for r in journal.records() {
            report.events += 1;
            if r.cell != cell {
                return Err(fail(
                    r.round,
                    format!("record stamped cell {} inside journal {cell}", r.cell),
                ));
            }
            match last {
                Some((lr, ls)) => {
                    let ok = r.round > lr || (r.round == lr && r.seq == ls + 1);
                    if !ok {
                        return Err(fail(
                            r.round,
                            format!(
                                "stamp ({}, {}) does not advance ({lr}, {ls})",
                                r.round, r.seq
                            ),
                        ));
                    }
                    if r.round > lr && r.seq != 0 {
                        return Err(fail(
                            r.round,
                            format!("round opened at seq {} instead of 0", r.seq),
                        ));
                    }
                }
                None => {
                    if r.seq != 0 {
                        return Err(fail(
                            r.round,
                            format!("journal starts at seq {} instead of 0", r.seq),
                        ));
                    }
                }
            }
            last = Some((r.round, r.seq));
            if r.round != tally_round {
                tally_round = r.round;
                round_requests = 0;
                round_established = 0;
                round_blocked = 0;
            }
            match &r.event {
                TraceEvent::Request { decision, hops, .. } => {
                    report.requests += 1;
                    round_requests += 1;
                    match (decision, hops) {
                        (RequestDecision::Established, Some(h)) => {
                            if *h == 0 {
                                return Err(fail(
                                    r.round,
                                    "established circuit with 0 hops".to_string(),
                                ));
                            }
                            report.established += 1;
                            round_established += 1;
                        }
                        (RequestDecision::Established, None) => {
                            return Err(fail(
                                r.round,
                                "established decision without a hop count".to_string(),
                            ));
                        }
                        (_, Some(_)) => {
                            return Err(fail(
                                r.round,
                                "blocked decision carries a hop count".to_string(),
                            ));
                        }
                        (_, None) => {
                            report.blocked += 1;
                            round_blocked += 1;
                        }
                    }
                }
                TraceEvent::FlowEstablished { flow, hops } => {
                    if open_flows.insert(*flow, *hops).is_some() {
                        return Err(fail(
                            r.round,
                            format!("flow slot {flow} opened while already open"),
                        ));
                    }
                    held_hops += u64::from(*hops);
                    report.flows_opened += 1;
                }
                TraceEvent::FlowReleased { flow, hops }
                | TraceEvent::FlowTornDown { flow, hops }
                | TraceEvent::FlowPreempted { flow, hops } => {
                    let what = match &r.event {
                        TraceEvent::FlowReleased { .. } => "released",
                        TraceEvent::FlowTornDown { .. } => "torn down",
                        _ => "preempted",
                    };
                    match open_flows.remove(flow) {
                        Some(h) if h == *hops => {}
                        Some(h) => {
                            return Err(fail(
                                r.round,
                                format!("flow slot {flow} {what} with {hops} hops but held {h}"),
                            ));
                        }
                        None => {
                            return Err(fail(
                                r.round,
                                format!("flow slot {flow} {what} while not open"),
                            ));
                        }
                    }
                    held_hops -= u64::from(*hops);
                    match &r.event {
                        TraceEvent::FlowReleased { .. } => report.flows_released += 1,
                        TraceEvent::FlowTornDown { .. } => report.flows_torn_down += 1,
                        _ => report.flows_preempted += 1,
                    }
                }
                TraceEvent::FlowRerouted {
                    flow,
                    old_hops,
                    new_hops,
                } => {
                    if *new_hops == 0 {
                        return Err(fail(
                            r.round,
                            format!("flow slot {flow} rerouted onto a 0-hop circuit"),
                        ));
                    }
                    match open_flows.get_mut(flow) {
                        Some(h) if *h == *old_hops => *h = *new_hops,
                        Some(h) => {
                            return Err(fail(
                                r.round,
                                format!(
                                    "flow slot {flow} rerouted from {old_hops} hops but held {h}"
                                ),
                            ));
                        }
                        None => {
                            return Err(fail(
                                r.round,
                                format!("flow slot {flow} rerouted while not open"),
                            ));
                        }
                    }
                    held_hops = held_hops - u64::from(*old_hops) + u64::from(*new_hops);
                    report.flows_rerouted += 1;
                }
                TraceEvent::LinkFailed { u, v, .. } => {
                    let key = (*u.min(v), *u.max(v));
                    if !failed_links.insert(key) {
                        return Err(fail(
                            r.round,
                            format!("link {{{u}, {v}}} failed while already failed"),
                        ));
                    }
                    report.links_failed += 1;
                }
                TraceEvent::LinkRepaired { u, v } => {
                    let key = (*u.min(v), *u.max(v));
                    if !failed_links.remove(&key) {
                        return Err(fail(
                            r.round,
                            format!("link {{{u}, {v}}} repaired while not failed"),
                        ));
                    }
                    report.links_repaired += 1;
                }
                TraceEvent::FlowQueued { .. } => queue_depth += 1,
                TraceEvent::QueueAdmit { .. } | TraceEvent::FlowTimeout { .. } => {
                    queue_depth -= 1;
                    if queue_depth < 0 {
                        return Err(fail(
                            r.round,
                            "queue drained below empty (admit/timeout without a queued arrival)"
                                .to_string(),
                        ));
                    }
                }
                // Neutral for every ledger: a conflicted proposal is
                // still pending, so it must not count as a request —
                // its concluding Request event arrives in a later wave.
                TraceEvent::BatchConflict { .. } => report.batch_conflicts += 1,
                TraceEvent::QueueOverflow
                | TraceEvent::FaultLink { .. }
                | TraceEvent::FaultNode { .. }
                | TraceEvent::DilationShift { .. } => {}
                TraceEvent::RoundEnd {
                    requests,
                    established,
                    blocked,
                    info,
                } => {
                    if (*requests, *established, *blocked)
                        != (round_requests, round_established, round_blocked)
                    {
                        return Err(fail(
                            r.round,
                            format!(
                                "round summary ({requests} req / {established} est / \
                                 {blocked} blk) != event tally ({round_requests} / \
                                 {round_established} / {round_blocked})"
                            ),
                        ));
                    }
                    if *requests != *established + *blocked {
                        return Err(fail(
                            r.round,
                            format!(
                                "conservation violated: {requests} != {established} + {blocked}"
                            ),
                        ));
                    }
                    if info.active_flows != open_flows.len() as u64 {
                        return Err(fail(
                            r.round,
                            format!(
                                "driver reports {} active flows, ledger holds {}",
                                info.active_flows,
                                open_flows.len()
                            ),
                        ));
                    }
                    if info.held_link_hops != held_hops {
                        return Err(fail(
                            r.round,
                            format!(
                                "driver reports {} held link-hops, ledger holds {held_hops}",
                                info.held_link_hops
                            ),
                        ));
                    }
                    let depth = u64::try_from(queue_depth).expect("non-negative queue depth");
                    if info.queue_depth != depth {
                        return Err(fail(
                            r.round,
                            format!(
                                "driver reports queue depth {}, ledger holds {depth}",
                                info.queue_depth
                            ),
                        ));
                    }
                    report.rounds_checked += 1;
                }
            }
        }
        Ok(report)
    }

    /// Audits a set of journals (one per cell), folding the totals.
    ///
    /// # Errors
    /// Returns the first violated invariant across the set.
    pub fn audit_journals(journals: &[TraceJournal]) -> Result<AuditReport, AuditError> {
        let mut total = AuditReport::default();
        for j in journals {
            total.absorb(&audit_journal(j)?);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::audit::{audit_journal, audit_journals};
    use super::*;
    use shc_graph::builders::{cycle, hypercube};
    use shc_netsim::{Engine, MaterializedNet};

    fn traced_ring_run() -> TraceJournal {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::with_probe(&net, 1, TraceJournal::new(3, 4096));
        sim.begin_round();
        assert!(sim.request(0, 2, 4).is_established());
        assert!(sim.request_path(&[3, 4]).is_established());
        assert!(!sim.request_path(&[0, 1, 2]).is_established());
        sim.begin_round();
        assert!(sim.request(0, 3, 4).is_established());
        let (_stats, journal) = sim.finish_with_probe();
        journal
    }

    #[test]
    fn journal_captures_admissions_with_stamps() {
        let journal = traced_ring_run();
        assert_eq!(journal.len(), 4);
        assert_eq!(journal.dropped(), 0);
        let stamps: Vec<(u64, u32)> = journal.records().map(|r| (r.round, r.seq)).collect();
        assert_eq!(stamps, vec![(0, 0), (0, 1), (0, 2), (1, 0)]);
        let report = audit_journal(&journal).expect("consistent");
        assert_eq!(report.requests, 4);
        assert_eq!(report.established, 3);
        assert_eq!(report.blocked, 1);
    }

    #[test]
    fn blocked_requests_name_the_rejecting_link() {
        let journal = traced_ring_run();
        let blocked: Vec<&TraceRecord> = journal
            .records()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::Request {
                        decision: RequestDecision::Saturated,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(blocked.len(), 1);
        let TraceEvent::Request {
            rejecting_link,
            hops,
            search,
            ..
        } = &blocked[0].event
        else {
            unreachable!()
        };
        assert!(rejecting_link.is_some(), "saturated block names its link");
        assert!(hops.is_none());
        assert!(search.is_none(), "fixed-path requests run no search");
    }

    #[test]
    fn adaptive_requests_carry_search_stats() {
        let net = MaterializedNet::new(hypercube(4));
        let mut sim = Engine::with_probe(&net, 1, TraceJournal::new(0, 64));
        sim.begin_round();
        assert!(sim.request(0, 15, 6).is_established());
        let (_s, journal) = sim.finish_with_probe();
        let TraceEvent::Request { search, .. } = &journal.records().next().unwrap().event else {
            panic!("expected a request record");
        };
        let s = search.expect("adaptive request records search effort");
        assert_eq!(s.strategy, RouteSearch::AStarCube);
        assert!(s.nodes_expanded >= 1);
        assert!(s.frontier_peak >= 1);
    }

    #[test]
    fn ring_drops_oldest_with_accounting() {
        let net = MaterializedNet::new(cycle(8));
        let mut sim = Engine::with_probe(&net, 8, TraceJournal::new(0, 3));
        sim.begin_round();
        for i in 0..5u64 {
            assert!(sim.request(i, i + 2, 4).is_established());
        }
        let (_s, journal) = sim.finish_with_probe();
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.dropped(), 2);
        // Oldest records went first: the retained stream starts at seq 2.
        assert_eq!(journal.records().next().unwrap().seq, 2);
        // An incomplete journal cannot be certified.
        let err = audit_journal(&journal).unwrap_err();
        assert!(err.message.contains("dropped"), "{err}");
    }

    #[test]
    fn flow_lifecycle_balances_in_the_audit() {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::with_probe(&net, 1, TraceJournal::new(1, 256));
        sim.begin_round();
        let shc_netsim::FlowOutcome::Established { flow, .. } = sim.request_flow(0, 2, 4) else {
            panic!("clean ring blocked");
        };
        let info = RoundEndInfo {
            active_flows: sim.active_flows() as u64,
            held_link_hops: sim.held_link_hops(),
            queue_depth: 0,
        };
        sim.probe_mut().on_round_end(&info);
        sim.begin_round();
        sim.release_flow(flow);
        sim.probe_mut().on_round_end(&RoundEndInfo {
            active_flows: 0,
            held_link_hops: 0,
            queue_depth: 0,
        });
        let (_s, journal) = sim.finish_with_probe();
        let report = audit_journal(&journal).expect("balanced lifecycle");
        assert_eq!(report.flows_opened, 1);
        assert_eq!(report.flows_released, 1);
        assert_eq!(report.rounds_checked, 2);
    }

    #[test]
    fn audit_rejects_unbalanced_flows() {
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowReleased { flow: 7, hops: 2 });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("not open"), "{err}");

        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowEstablished { flow: 0, hops: 2 });
        j.push(TraceEvent::FlowReleased { flow: 0, hops: 3 });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("held 2"), "{err}");
    }

    #[test]
    fn audit_rejects_gauge_mismatch() {
        let mut j = TraceJournal::new(2, 16);
        j.push(TraceEvent::FlowEstablished { flow: 0, hops: 3 });
        j.on_round_end(&RoundEndInfo {
            active_flows: 1,
            held_link_hops: 99,
            queue_depth: 0,
        });
        let err = audit_journal(&j).unwrap_err();
        assert_eq!(err.cell, 2);
        assert!(err.message.contains("held link-hops"), "{err}");
    }

    /// An engine-backed churn run: a fault under a held flow that tears
    /// it down, a fault under another flow that reroutes in place, a
    /// preemption, and a repair — everything the churn service emits.
    fn traced_churn_run() -> TraceJournal {
        let net = MaterializedNet::new(cycle(6));
        let mut sim = Engine::with_probe(&net, 1, TraceJournal::new(5, 4096));
        sim.begin_round();
        let shc_netsim::FlowOutcome::Established { .. } = sim.request_flow(0, 1, 5) else {
            panic!("clean ring blocked");
        };
        let shc_netsim::FlowOutcome::Established { flow: movable, .. } = sim.request_flow(3, 4, 5)
        else {
            panic!("clean ring blocked");
        };
        sim.begin_round();
        // Fault under `doomed`: announce, then tear down.
        let affected = sim.fail_link(0, 1);
        sim.probe_mut()
            .on_fault_under_load(0, 1, u32::try_from(affected.len()).unwrap());
        for f in affected {
            sim.teardown_flow(f);
        }
        sim.begin_round();
        // Heal the first link (a cycle minus two edges has no detour),
        // then fault under `movable`: announce, reroute in place, and
        // finally preempt the survivor.
        sim.repair_link(0, 1);
        sim.probe_mut().on_link_repaired(0, 1);
        let affected = sim.fail_link(3, 4);
        sim.probe_mut()
            .on_fault_under_load(3, 4, u32::try_from(affected.len()).unwrap());
        for f in affected {
            assert!(matches!(
                sim.reroute_flow(f, 5),
                shc_netsim::RerouteOutcome::Rerouted { .. }
            ));
        }
        sim.preempt_flow(movable);
        let info = RoundEndInfo {
            active_flows: sim.active_flows() as u64,
            held_link_hops: sim.held_link_hops(),
            queue_depth: 0,
        };
        sim.probe_mut().on_round_end(&info);
        let (_s, journal) = sim.finish_with_probe();
        journal
    }

    #[test]
    fn churn_lifecycle_balances_in_the_audit() {
        let journal = traced_churn_run();
        let report = audit_journal(&journal).expect("churn stream conserved");
        assert_eq!(report.flows_opened, 2);
        assert_eq!(report.flows_torn_down, 1);
        assert_eq!(report.flows_rerouted, 1);
        assert_eq!(report.flows_preempted, 1);
        assert_eq!(report.flows_released, 0);
        assert_eq!(report.links_failed, 2);
        assert_eq!(report.links_repaired, 1);
        assert_eq!(report.rounds_checked, 1);
        let jsonl = journal.render_jsonl();
        for needle in [
            "\"type\":\"fault_under_load\"",
            "\"type\":\"repair\"",
            "\"type\":\"flow_torn_down\"",
            "\"type\":\"flow_preempted\"",
            "\"type\":\"reroute\"",
        ] {
            assert!(jsonl.contains(needle), "missing {needle} in:\n{jsonl}");
        }
        // Same seedless deterministic run ⇒ identical bytes.
        assert_eq!(jsonl, traced_churn_run().render_jsonl());
    }

    #[test]
    fn audit_rejects_corrupted_churn_streams() {
        // Teardown of a never-opened flow.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowTornDown { flow: 4, hops: 2 });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("torn down while not open"), "{err}");

        // Double release: released, then preempted again.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowEstablished { flow: 0, hops: 2 });
        j.push(TraceEvent::FlowReleased { flow: 0, hops: 2 });
        j.push(TraceEvent::FlowPreempted { flow: 0, hops: 2 });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("preempted while not open"), "{err}");

        // Reroute that misstates the old circuit length.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowEstablished { flow: 1, hops: 3 });
        j.push(TraceEvent::FlowRerouted {
            flow: 1,
            old_hops: 2,
            new_hops: 4,
        });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("held 3"), "{err}");

        // Reroute of an unknown flow.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowRerouted {
            flow: 9,
            old_hops: 1,
            new_hops: 2,
        });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("rerouted while not open"), "{err}");

        // Double failure of one link (endpoint order normalized).
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::LinkFailed {
            u: 2,
            v: 3,
            affected: 0,
        });
        j.push(TraceEvent::LinkFailed {
            u: 3,
            v: 2,
            affected: 0,
        });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("already failed"), "{err}");

        // Repair of a link that never failed.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::LinkRepaired { u: 0, v: 1 });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("repaired while not failed"), "{err}");
    }

    #[test]
    fn reroute_updates_the_held_hops_ledger() {
        // After a reroute the gauges must match the *new* circuit.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowEstablished { flow: 0, hops: 1 });
        j.push(TraceEvent::FlowRerouted {
            flow: 0,
            old_hops: 1,
            new_hops: 3,
        });
        j.on_round_end(&RoundEndInfo {
            active_flows: 1,
            held_link_hops: 3,
            queue_depth: 0,
        });
        let report = audit_journal(&j).expect("ledger tracks the new circuit");
        assert_eq!(report.flows_rerouted, 1);

        // A stale gauge (pre-reroute hops) is caught.
        let mut j = TraceJournal::new(0, 16);
        j.push(TraceEvent::FlowEstablished { flow: 0, hops: 1 });
        j.push(TraceEvent::FlowRerouted {
            flow: 0,
            old_hops: 1,
            new_hops: 3,
        });
        j.on_round_end(&RoundEndInfo {
            active_flows: 1,
            held_link_hops: 1,
            queue_depth: 0,
        });
        let err = audit_journal(&j).unwrap_err();
        assert!(err.message.contains("held link-hops"), "{err}");
    }

    #[test]
    fn jsonl_render_is_deterministic_and_structured() {
        let a = traced_ring_run().render_jsonl();
        let b = traced_ring_run().render_jsonl();
        assert_eq!(a, b, "same run ⇒ identical bytes");
        assert_eq!(a.lines().count(), 5, "4 records + 1 summary");
        assert!(a.contains("\"type\":\"request\""));
        assert!(a.contains("\"decision\":\"established\""));
        assert!(a.contains("\"decision\":\"saturated\""));
        assert!(a.contains("\"rejecting_link\":"));
        assert!(a.ends_with("\"events\":4,\"dropped\":0}\n"));
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn pre_round_events_share_round_zero_without_stamp_clash() {
        let net = MaterializedNet::new(cycle(4));
        let mut sim = Engine::with_probe(&net, 1, TraceJournal::new(0, 64));
        // Fault activation is announced before the first round opens.
        sim.probe_mut().on_fault_link(0, 1);
        sim.probe_mut().on_fault_node(3);
        sim.begin_round();
        assert!(sim.request_path(&[1, 2]).is_established());
        let (_s, journal) = sim.finish_with_probe();
        let stamps: Vec<(u64, u32)> = journal.records().map(|r| (r.round, r.seq)).collect();
        assert_eq!(stamps, vec![(0, 0), (0, 1), (0, 2)]);
        audit_journal(&journal).expect("idempotent round 0 announcement");
    }

    #[test]
    fn multi_journal_audit_folds_totals() {
        let j1 = traced_ring_run();
        let j2 = traced_ring_run();
        let total = audit_journals(&[j1, j2]).expect("both consistent");
        assert_eq!(total.requests, 8);
        assert_eq!(total.established, 6);
    }

    #[test]
    #[should_panic(expected = "at least 1 event")]
    fn zero_capacity_journal_panics() {
        let _ = TraceJournal::new(0, 0);
    }
}
