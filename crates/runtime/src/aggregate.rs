//! Folding per-replica counters into distribution summaries.
//!
//! Everything here is computed from **integer** samples folded in replica
//! order: sums are order-independent, percentiles come from a sort, and
//! the only floats (means, rates) are single final divisions — so the
//! aggregate of a run is bit-identical no matter how many worker threads
//! produced the replicas. That property is what the tier-1 determinism
//! test pins.

use serde::{Deserialize, Serialize};

/// Distribution summary of one integer-valued metric across replicas.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Sample count (= replications).
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (exact integer sum over count).
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 90th percentile (nearest-rank).
    pub p90: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl MetricSummary {
    /// Summarizes `samples` (sorted in place). All-zero for no samples.
    #[must_use]
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0,
            };
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&x| u128::from(x)).sum();
        Self {
            count: samples.len(),
            min: samples[0],
            max: samples[samples.len() - 1],
            mean: sum as f64 / samples.len() as f64,
            p50: nearest_rank(samples, 50),
            p90: nearest_rank(samples, 90),
            p99: nearest_rank(samples, 99),
        }
    }
}

/// Nearest-rank percentile of an already sorted non-empty slice.
fn nearest_rank(sorted: &[u64], pct: u32) -> u64 {
    debug_assert!(!sorted.is_empty() && (1..=100).contains(&pct));
    let rank = (sorted.len() as u64 * u64::from(pct)).div_ceil(100);
    sorted[(rank.max(1) - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = MetricSummary::from_samples(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_known_distribution() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let s = MetricSummary::from_samples(&mut samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
    }

    #[test]
    fn summary_is_order_independent() {
        let mut asc: Vec<u64> = (0..50).collect();
        let mut desc: Vec<u64> = (0..50).rev().collect();
        assert_eq!(
            MetricSummary::from_samples(&mut asc),
            MetricSummary::from_samples(&mut desc)
        );
    }

    #[test]
    fn single_sample() {
        let s = MetricSummary::from_samples(&mut [7]);
        assert_eq!((s.min, s.max, s.p50, s.p90, s.p99), (7, 7, 7, 7, 7));
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = MetricSummary::from_samples(&mut [1, 2, 3]);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
