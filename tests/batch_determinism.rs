//! Tier-1 guard for the propose-then-commit batch pipeline's
//! determinism contract: a batched scenario or service cell produces the
//! same report — and byte-identical trace journals — no matter how many
//! intra-round propose workers route the batches, stacked on top of the
//! existing inter-replica worker-count invariance. Companion to
//! `runtime_determinism.rs` / `trace_determinism.rs`, which pin the same
//! contract for the serial admission paths.

use sparse_hypercube::prelude::*;
use sparse_hypercube::runtime::trace::audit::audit_journals;
use sparse_hypercube::runtime::{
    run_scenario_intra, run_scenario_traced_intra, run_service_intra, run_service_traced_intra,
};

/// The built-in batched permutation cells (bit-reversal + transpose),
/// fast-sized.
fn batched_scenarios() -> Vec<Scenario> {
    let cells: Vec<Scenario> = builtin_catalog(true)
        .into_iter()
        .filter(|s| s.batch)
        .collect();
    assert_eq!(cells.len(), 2, "catalog ships two batched cells");
    cells
}

/// The built-in batched service cells, fast-sized.
fn batched_service_cells() -> Vec<ServiceSpec> {
    let cells: Vec<ServiceSpec> = builtin_service_catalog(true)
        .into_iter()
        .filter(|s| s.batch_admission)
        .collect();
    assert!(!cells.is_empty(), "catalog ships batched service cells");
    cells
}

#[test]
fn batched_scenario_reports_are_intra_invariant() {
    for scenario in batched_scenarios() {
        let single = run_scenario_intra(&scenario, 1, 1);
        let json_single = serde_json::to_string_pretty(&single).unwrap();
        for (threads, intra) in [(1, 4), (4, 1), (4, 4)] {
            let parallel = run_scenario_intra(&scenario, threads, intra);
            assert_eq!(
                single, parallel,
                "{}: report diverged at threads={threads} intra={intra}",
                scenario.name
            );
            assert_eq!(
                json_single,
                serde_json::to_string_pretty(&parallel).unwrap(),
                "{}: JSON bytes diverged at threads={threads} intra={intra}",
                scenario.name
            );
        }
        // Batched permutation rounds conclude every non-fixed-point
        // request, one way or the other.
        assert!(single.total_established > 0, "{}", scenario.name);
    }
}

#[test]
fn batched_scenario_journals_are_intra_invariant_and_audit_clean() {
    for scenario in batched_scenarios() {
        let scenario = scenario.replications(4);
        let (report_1, journals_1) = run_scenario_traced_intra(&scenario, 1, 1 << 16, 1);
        let mut bytes_1 = String::new();
        for j in &journals_1 {
            j.render_jsonl_into(&mut bytes_1);
        }
        assert!(!bytes_1.is_empty());
        let (report_4, journals_4) = run_scenario_traced_intra(&scenario, 2, 1 << 16, 4);
        let mut bytes_4 = String::new();
        for j in &journals_4 {
            j.render_jsonl_into(&mut bytes_4);
        }
        assert_eq!(report_1, report_4, "{}: traced reports diverged", scenario.name);
        assert_eq!(bytes_1, bytes_4, "{}: journal bytes diverged", scenario.name);
        // Tracing is an observer, and the journals replay clean.
        assert_eq!(report_1, run_scenario_intra(&scenario, 2, 4));
        let audit = audit_journals(&journals_1).expect("journals replay clean");
        assert_eq!(audit.established, report_1.total_established);
        assert_eq!(audit.blocked, report_1.total_blocked);
    }
}

#[test]
fn batched_service_cells_are_intra_invariant() {
    for spec in batched_service_cells() {
        let single = run_service_intra(&spec, 1);
        let json_single = serde_json::to_string_pretty(&single).unwrap();
        for intra in [2, 4] {
            let parallel = run_service_intra(&spec, intra);
            assert_eq!(
                single, parallel,
                "{}: report diverged at intra={intra}",
                spec.name
            );
            assert_eq!(
                json_single,
                serde_json::to_string_pretty(&parallel).unwrap(),
                "{}: JSON bytes diverged at intra={intra}",
                spec.name
            );
        }
    }
}

#[test]
fn batched_service_journals_are_intra_invariant_and_audit_clean() {
    let spec = batched_service_cells().remove(0);
    let (report_1, journal_1) = run_service_traced_intra(&spec, 0, 1 << 18, 1);
    let (report_4, journal_4) = run_service_traced_intra(&spec, 0, 1 << 18, 4);
    assert_eq!(report_1, report_4, "traced reports diverged across intra");
    assert_eq!(
        journal_1.render_jsonl(),
        journal_4.render_jsonl(),
        "journal bytes diverged across intra"
    );
    assert_eq!(
        report_1,
        run_service_intra(&spec, 4),
        "tracing perturbed the run"
    );
    let audit = audit_journals(std::slice::from_ref(&journal_1)).expect("journal replays clean");
    assert_eq!(audit.rounds_checked as usize, spec.rounds);
}
