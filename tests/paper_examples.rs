//! Every worked example of the paper, asserted end to end across crates.

use sparse_hypercube::broadcast::GraphOracle;
use sparse_hypercube::core::{bounds, DimPartition};
use sparse_hypercube::graph::builders::theorem1_tree;
use sparse_hypercube::graph::metrics;
use sparse_hypercube::labeling::constructions::{paper_example1_q2, paper_example1_q3};
use sparse_hypercube::labeling::verify::satisfies_condition_a;
use sparse_hypercube::prelude::*;

/// Example 1: the two explicit labelings.
#[test]
fn example1() {
    assert!(satisfies_condition_a(&paper_example1_q2()));
    assert!(satisfies_condition_a(&paper_example1_q3()));
    assert_eq!(paper_example1_q2().num_labels(), 2);
    assert_eq!(paper_example1_q3().num_labels(), 4);
}

fn g42() -> SparseHypercube {
    SparseHypercube::construct_base_with(
        4,
        2,
        paper_example1_q2(),
        Some(DimPartition::from_subsets(2, 4, &[vec![3], vec![4]])),
    )
}

/// Example 2 + Figs. 2–3: G_{4,2}.
#[test]
fn example2() {
    let g = g42();
    assert_eq!(g.max_degree(), 3);
    assert_eq!(g.num_edges(), 24);
    // "vertex 0011 is connected with vertex 0111".
    assert!(g.has_edge(0b0011, 0b0111));
    // Rule 1 edges of Fig. 2 are all present.
    for u in 0..16u64 {
        assert!(g.has_edge(u, u ^ 0b01));
        assert!(g.has_edge(u, u ^ 0b10));
    }
}

/// Example 3: G_{15,3} and its labeling g(x000) = c1.
#[test]
fn example3() {
    let g = SparseHypercube::construct_base(15, 3);
    assert_eq!(g.max_degree(), 6);
    // All vertices with suffix 000 share the label of 0 (syndrome 0 = c1).
    let level = &g.levels()[0];
    let l0 = level.label_of(0);
    for x in 0..(1u64 << 12) {
        assert_eq!(level.label_of(x << 3), l0);
    }
    // 0^15 is connected to exactly dims {1,2,3} ∪ S_1 = {13,14,15}.
    let nbrs = g.neighbors(0);
    assert_eq!(nbrs.len(), 6);
    assert!(g.has_edge(0, 1 << 14));
    assert!(g.has_edge(0, 1 << 13));
    assert!(g.has_edge(0, 1 << 12));
    assert!(!g.has_edge(0, 1 << 11));
}

/// Example 4 + Fig. 4: the broadcast from 0000 in G_{4,2}.
#[test]
fn example4() {
    let g = g42();
    let s = broadcast_scheme(&g, 0);
    let r = verify_minimum_time(&g, &s, 2).expect("Theorem 4");
    assert_eq!(r.rounds, 4);
    assert_eq!(r.informed_after_round, vec![2, 4, 8, 16]);
    // First call: length 2, crossing dimension 4 through a Q2 relay.
    let first = &s.rounds[0].calls[0];
    assert_eq!(first.caller(), 0b0000);
    assert_eq!(first.len(), 2);
    assert_eq!(first.receiver() >> 3, 1);
    // Final two rounds: only direct (length-1) subcube calls.
    for round in &s.rounds[2..] {
        assert!(round.calls.iter().all(|c| c.len() == 1));
    }
}

/// Examples 5–6 + Fig. 5: LABEL(7,4,2) and Construct_REC(7,4,2), with the
/// paper's Example-1 labeling of Q2 at the outer level (the default
/// construction uses an equally valid but different Condition-A labeling).
#[test]
fn examples5_and_6() {
    let g =
        SparseHypercube::construct_with(&[2, 4, 7], &[paper_example1_q2(), paper_example1_q2()]);
    let top = &g.levels()[1];
    // Example 5: g(x00y) = g(x11y) and g(x01y) = g(x10y) — the label reads
    // only bits (2,4], via a Condition-A labeling of Q2.
    for x in 0..(1u64 << 3) {
        for y in 0..(1u64 << 2) {
            let v = |mid: u64| (x << 4) | (mid << 2) | y;
            assert_eq!(top.label_of(v(0b00)), top.label_of(v(0b11)));
            assert_eq!(top.label_of(v(0b01)), top.label_of(v(0b10)));
            assert_ne!(top.label_of(v(0b00)), top.label_of(v(0b01)));
        }
    }
    // Example 6: 0000000's Rule-1 neighbors inside its G_{4,2} copy plus
    // two Rule-2 neighbors among dims {5,6,7}.
    let nbrs = g.neighbors(0);
    assert_eq!(nbrs.len(), 5);
    let cross: Vec<u32> = g.cross_dims(0);
    assert_eq!(cross.iter().filter(|&&d| d >= 5).count(), 2);
    // And the scheme validates (Theorem 6).
    let s = broadcast_scheme(&g, 0);
    verify_minimum_time(&g, &s, 3).expect("Theorem 6");
}

/// Theorem 1 + Fig. 1: the h = 3 tree (22 vertices) is a 6-mlbg.
#[test]
fn theorem1_fig1() {
    let t = theorem1_tree(3);
    assert_eq!(t.num_vertices(), 22);
    assert_eq!(bounds::thm1_tree_size(3), 22);
    assert_eq!(metrics::diameter(&t), Some(6));
    let o = GraphOracle::new(&t);
    for source in 0..22u32 {
        let s = tree_line_broadcast(&t, source).expect("schedulable");
        let r = verify_minimum_time(&o, &s, 6).expect("6-line minimum time");
        assert_eq!(r.rounds, 5); // ceil(log2 22)
    }
}

/// The §2 star observation: fewest edges in G_k for k >= 2.
#[test]
fn star_edge_minimal_member() {
    let n = 16u64;
    let star = sparse_hypercube::graph::builders::star(n as usize);
    let o = GraphOracle::new(&star);
    for source in [0u64, 1, 15] {
        let s = star_broadcast(n, source);
        verify_minimum_time(&o, &s, 2).expect("star is a 2-mlbg");
    }
    // A connected graph cannot have fewer than N − 1 edges.
    use sparse_hypercube::graph::GraphView;
    assert_eq!(star.num_edges(), n as usize - 1);
}

/// Theorem 2's proof premise: exact doubling forces the source to reach n
/// distinct vertices within distance k — check the ball-size arithmetic
/// used in the bound for k = 2.
#[test]
fn theorem2_ball_arithmetic() {
    for delta in 1u64..20 {
        // |B(v, 2)| - 1 <= Δ + Δ(Δ−1) = Δ^2 (paper eq. (1)).
        assert_eq!(delta + delta * (delta - 1), delta * delta);
    }
    assert_eq!(bounds::thm2_lower_bound(2, 16), 4);
    assert_eq!(bounds::thm2_lower_bound(2, 17), 5);
}

/// Lemma 2 + Example 1 consistency: λ_2 = 2, λ_3 = 4 (exact), and the
/// paper's remark that the lower bound is not improvable at m = 2.
#[test]
fn lemma2_exact_small() {
    use sparse_hypercube::labeling::search;
    assert_eq!(search::exact_lambda(2), 2);
    assert_eq!(search::exact_lambda(3), 4);
    assert_eq!(search::lemma2_lower_bound(2), 2, "⌈2/2⌉+1 = 2 = λ_2");
}
