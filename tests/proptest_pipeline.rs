//! Property-based integration tests: random legal parameter vectors and
//! sources through the full construct → schedule → verify → replay
//! pipeline.

use proptest::prelude::*;
use sparse_hypercube::prelude::*;

/// Random legal dims for k in [2, 4] with n <= 11 (materialization-free
/// pipeline, so this could go far larger; kept modest for CI time).
fn arb_dims() -> impl Strategy<Value = Vec<u32>> {
    (2usize..=4).prop_flat_map(|k| {
        // Choose k strictly increasing values in 1..=11.
        proptest::collection::btree_set(1u32..=11, k).prop_filter_map(
            "need max >= k for a nontrivial graph",
            move |set| {
                let dims: Vec<u32> = set.into_iter().collect();
                (dims.len() >= 2).then_some(dims)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_params_full_pipeline(dims in arb_dims(), source_raw: u64) {
        let g = SparseHypercube::construct(&dims);
        let k = dims.len();
        let n = g.n();
        let source = source_raw & ((1u64 << n) - 1);

        let schedule = broadcast_scheme(&g, source);
        let report = verify_minimum_time(&g, &schedule, k)
            .map_err(|e| TestCaseError::fail(format!("{dims:?}: {e}")))?;
        prop_assert_eq!(report.rounds, n as usize);
        prop_assert!(report.max_call_len <= k);
        prop_assert_eq!(report.total_calls as u64, g.num_vertices() - 1);

        let sim = replay_schedule(&g, &schedule, 1);
        prop_assert_eq!(sim.blocked, 0);
    }

    #[test]
    fn degree_bounds_hold_for_random_params(dims in arb_dims()) {
        let g = SparseHypercube::construct(&dims);
        let k = dims.len() as u32;
        let n = g.n();
        // Lower bound (Theorems 2–3) always applies to any k-mlbg.
        if (2..=4).contains(&k) {
            let lower = sparse_hypercube::core::bounds::thm2_lower_bound(k, n);
            prop_assert!(g.max_degree() as u64 >= lower,
                "{:?}: Δ = {} < lower bound {}", dims, g.max_degree(), lower);
        }
        // The degree formula agrees with a vertex scan.
        let scan = (0..g.num_vertices()).map(|u| g.degree(u)).max().unwrap();
        prop_assert_eq!(scan, g.max_degree());
    }

    #[test]
    fn schedule_calls_respect_distance_k(dims in arb_dims(), source_raw: u64) {
        // Definition 1 says the callee is at distance <= k; our calls carry
        // paths of length <= k, which implies it. Check the endpoints'
        // actual graph distance on a materialized instance.
        let g = SparseHypercube::construct(&dims);
        let n = g.n();
        if n > 10 { return Ok(()); } // keep materialization cheap
        let k = dims.len();
        let source = source_raw & ((1u64 << n) - 1);
        let mat = g.to_graph();
        let schedule = broadcast_scheme(&g, source);
        for round in &schedule.rounds {
            for call in &round.calls {
                let d = sparse_hypercube::graph::traversal::distance(
                    &mat,
                    call.caller() as u32,
                    call.receiver() as u32,
                )
                .expect("connected");
                prop_assert!((d as usize) <= k);
            }
        }
    }

    #[test]
    fn tree_scheduler_on_random_caterpillars(spine in 2usize..12, legs in 0usize..12, source_raw: u64) {
        // Caterpillar trees: a spine path with pendant legs — a family the
        // region splitter must handle beyond the Theorem-1 shape.
        use sparse_hypercube::graph::AdjGraph;
        let n = spine + legs;
        let mut g = AdjGraph::with_vertices(n);
        for i in 1..spine {
            g.add_edge((i - 1) as u32, i as u32);
        }
        for l in 0..legs {
            let attach = (l % spine) as u32;
            g.add_edge(attach, (spine + l) as u32);
        }
        let source = (source_raw % n as u64) as u32;
        if let Ok(schedule) = tree_line_broadcast(&g, source) {
            let o = sparse_hypercube::broadcast::GraphOracle::new(&g);
            let r = verify_minimum_time(&o, &schedule, n)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert!(r.is_minimum_time());
        }
    }
}
