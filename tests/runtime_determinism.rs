//! Tier-1 guard for the scenario runtime's determinism contract:
//! same seed ⇒ identical aggregate report — including its serialized
//! JSON bytes — no matter how many worker threads execute the replicas.
//! Kept small enough to run on every PR alongside the Example-3 smoke
//! tests.

use sparse_hypercube::prelude::*;
use sparse_hypercube::runtime::DilationShift;

fn monte_carlo_scenario() -> Scenario {
    // Deliberately exercises every source of per-replica randomness:
    // random originators, random co-sources, link failures, node
    // crashes, and a mid-run dilation shift.
    Scenario::new(
        "tier1-determinism",
        TopologySpec::SparseBase { n: 7, m: 3 },
        Workload::Broadcast { competing: 2 },
    )
    .originators(OriginatorPolicy::Random)
    .faults(FaultSpec {
        link_failures: 6,
        node_crashes: 2,
        dilation_shift: Some(DilationShift {
            at_round: 3,
            dilation: 2,
        }),
    })
    .replications(40)
    .seed(0x00D5_7E21)
}

#[test]
fn same_seed_same_json_across_worker_counts() {
    let scenario = monte_carlo_scenario();
    let single = run_scenario(&scenario, 1);
    let json_single = serde_json::to_string_pretty(&single).unwrap();
    for threads in [2, 4, 8] {
        let parallel = run_scenario(&scenario, threads);
        assert_eq!(single, parallel, "aggregates diverged at {threads} threads");
        let json_parallel = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(
            json_single, json_parallel,
            "JSON bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn different_seed_changes_the_report() {
    let a = run_scenario(&monte_carlo_scenario(), 2);
    let b = run_scenario(&monte_carlo_scenario().seed(999), 2);
    assert_ne!(a, b, "fault draws must actually depend on the seed");
}

#[test]
fn report_json_round_trips() {
    let report = run_scenario(&monte_carlo_scenario(), 2);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: ScenarioReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn service_cells_are_deterministic_across_worker_counts() {
    // The flow service layer rides the same contract: each cell is
    // sequential from its own seed, cells fan out via map_cells, and the
    // assembled reports — bytes included — match for any worker count.
    let cells: Vec<ServiceSpec> = builtin_service_catalog(true).into_iter().take(3).collect();
    let single = sparse_hypercube::runtime::map_cells(&cells, 1, run_service);
    let json_single = serde_json::to_string_pretty(&single).unwrap();
    for threads in [2, 4] {
        let parallel = sparse_hypercube::runtime::map_cells(&cells, threads, run_service);
        assert_eq!(single, parallel, "reports diverged at {threads} threads");
        assert_eq!(
            json_single,
            serde_json::to_string_pretty(&parallel).unwrap(),
            "JSON bytes diverged at {threads} threads"
        );
    }
    // And the seed matters: a reseeded cell reports different traffic.
    let reseeded = cells[0].clone().seed(cells[0].seed + 1);
    assert_ne!(single[0], run_service(&reseeded));
}

#[test]
fn undamaged_sweep_blocks_nothing() {
    // The smallest catalog-style originator sweep: Theorem 4's
    // edge-disjointness re-checked physically through the runtime stack.
    let sweep = Scenario::new(
        "tier1-sweep",
        TopologySpec::SparseBase { n: 6, m: 3 },
        Workload::Broadcast { competing: 1 },
    )
    .originators(OriginatorPolicy::Sweep)
    .replications(64)
    .seed(3);
    let report = run_scenario(&sweep, 0);
    assert_eq!(report.total_blocked, 0);
    assert!((report.mean_informed_fraction - 1.0).abs() < 1e-12);
    let rounds = report.metric("rounds").unwrap();
    assert_eq!((rounds.min, rounds.max), (6, 6));
}
