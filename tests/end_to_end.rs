//! End-to-end integration: construct → structurally validate → generate
//! schedule → verify against Definition 1 → physically replay through the
//! circuit simulator. Every stage crosses a crate boundary.

use sparse_hypercube::core::validate;
use sparse_hypercube::prelude::*;

/// The full pipeline for one parameter vector and source.
fn pipeline(dims: &[u32], source: u64) {
    let g = SparseHypercube::construct(dims);
    let k = dims.len();

    // Structural invariants (Condition A per level, oracle symmetry, …).
    validate::validate_materialized(&g).unwrap_or_else(|e| panic!("{dims:?}: {e}"));

    // The paper's scheme, validated.
    let schedule = broadcast_scheme(&g, source);
    let report = verify_minimum_time(&g, &schedule, k)
        .unwrap_or_else(|e| panic!("{dims:?} from {source}: {e}"));
    assert_eq!(report.rounds, g.n() as usize);
    assert!(report.max_call_len <= k);
    assert_eq!(report.total_calls as u64, g.num_vertices() - 1);

    // Physical replay: a valid schedule establishes every circuit at
    // dilation 1.
    let sim = replay_schedule(&g, &schedule, 1);
    assert_eq!(sim.blocked, 0, "{dims:?}: physical replay must not block");
    assert_eq!(sim.established, schedule.num_calls());
}

#[test]
fn pipeline_base_constructions() {
    for (n, m) in [(4u32, 2u32), (6, 2), (8, 3), (10, 4), (12, 5), (13, 3)] {
        for source in [0u64, (1 << n) - 1, 1 << (n - 1)] {
            pipeline(&[m, n], source);
        }
    }
}

#[test]
fn pipeline_recursive_k3() {
    for dims in [[1u32, 2, 6], [2, 4, 8], [2, 5, 11], [3, 6, 12]] {
        pipeline(&dims, 0);
        pipeline(&dims, (1 << dims[2]) - 1);
    }
}

#[test]
fn pipeline_recursive_k4_k5() {
    pipeline(&[1, 2, 4, 9], 0);
    pipeline(&[2, 4, 6, 11], 123);
    pipeline(&[1, 2, 3, 5, 10], 0);
    pipeline(&[1, 2, 4, 7, 12], 999);
}

#[test]
fn doubling_is_exact_everywhere() {
    // N = 2^n forces exact doubling (paper, proof of Theorem 2): check the
    // verifier's per-round counts.
    let g = SparseHypercube::construct(&[2, 4, 9]);
    let schedule = broadcast_scheme(&g, 7);
    let report = verify_minimum_time(&g, &schedule, 3).expect("valid");
    for (t, &count) in report.informed_after_round.iter().enumerate() {
        assert_eq!(count, 1 << (t + 1), "round {t}");
    }
}

#[test]
fn paper_parameter_defaults_end_to_end() {
    // Theorem 5 / Theorem 7 default parameters, materializable sizes.
    use sparse_hypercube::core::params::paper_params;
    for (k, n) in [(2u32, 10u32), (2, 14), (3, 10), (3, 13), (4, 12)] {
        let choice = paper_params(k, n);
        pipeline(&choice.dims, 0);
    }
}

#[test]
fn schedules_also_valid_on_materialized_graph() {
    // The rule-based oracle and the materialized adjacency agree on what a
    // valid schedule is.
    use sparse_hypercube::broadcast::GraphOracle;
    let g = SparseHypercube::construct(&[2, 4, 8]);
    let mat = g.to_graph();
    let schedule = broadcast_scheme(&g, 42);
    let via_oracle = verify_minimum_time(&g, &schedule, 3).expect("oracle");
    let o = GraphOracle::new(&mat);
    let via_graph = verify_minimum_time(&o, &schedule, 3).expect("materialized");
    assert_eq!(via_oracle, via_graph);
}

#[test]
fn competing_broadcasts_and_dilation_monotone() {
    let g = SparseHypercube::construct_base(9, 3);
    let schedules: Vec<Schedule> = [0u64, 85, 341, 511]
        .iter()
        .map(|&s| broadcast_scheme(&g, s))
        .collect();
    let mut prev_blocked = usize::MAX;
    for dilation in [1u32, 2, 4, 8] {
        let stats = replay_competing(&g, &schedules, dilation);
        assert!(
            stats.blocked <= prev_blocked,
            "dilation {dilation} should not increase blocking"
        );
        prev_blocked = stats.blocked;
    }
    // Enough dilation absorbs everything.
    let stats = replay_competing(&g, &schedules, 16);
    assert_eq!(stats.blocked, 0);
}

#[test]
fn schedule_survives_json_roundtrip() {
    // Schedules are plain data: exporting to JSON and back preserves
    // validity (useful for archiving machine-checked witnesses).
    let g = SparseHypercube::construct_base(8, 3);
    let s = broadcast_scheme(&g, 5);
    let json = serde_json::to_string(&s).expect("serialize");
    let back: Schedule = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(s, back);
    verify_minimum_time(&g, &back, 2).expect("valid after roundtrip");
}

#[test]
fn greedy_baseline_on_intact_sparse_hypercube() {
    // The structure-free greedy baseline completes on sparse hypercubes
    // and its schedule passes the same validator as the constructive
    // scheme (possibly with more rounds — that gap is Theorem 4's value).
    use sparse_hypercube::broadcast::schemes::greedy::greedy_broadcast;
    use sparse_hypercube::broadcast::GraphOracle;
    let g = SparseHypercube::construct_base(9, 3);
    let mat = g.to_graph();
    let out = greedy_broadcast(&mat, 0, 2, 40);
    assert!(out.complete);
    let o = GraphOracle::new(&mat);
    verify_schedule(&o, &out.schedule, 2).expect("greedy schedule valid");
    let constructive_rounds = broadcast_scheme(&g, 0).num_rounds();
    assert!(out.schedule.num_rounds() >= constructive_rounds);
}
