//! Tier-1 guard for the tracing layer's determinism contract: a
//! [`TraceJournal`] is stamped with simulated time only (cell, round,
//! seq), so the journals of a traced run — including their JSONL bytes —
//! are identical for any worker-thread count, and the trace-backed
//! invariant checker (`trace::audit`) certifies every journal the
//! runtime produces. Companion to `runtime_determinism.rs`, which pins
//! the same contract for the aggregate reports.

use sparse_hypercube::prelude::*;
use sparse_hypercube::runtime::trace::audit::audit_journals;
use sparse_hypercube::runtime::DilationShift;

/// Exercises every per-replica randomness source plus every traced
/// event family: faults, dilation shift, admissions, search stats.
fn monte_carlo_scenario() -> Scenario {
    Scenario::new(
        "tier1-trace",
        TopologySpec::SparseBase { n: 7, m: 3 },
        Workload::Broadcast { competing: 2 },
    )
    .originators(OriginatorPolicy::Random)
    .faults(FaultSpec {
        link_failures: 6,
        node_crashes: 2,
        dilation_shift: Some(DilationShift {
            at_round: 3,
            dilation: 2,
        }),
    })
    .replications(24)
    .seed(0x00D5_7E21)
}

/// Queue-heavy service cell: arrivals, holding, timeouts, overflows.
fn service_cell() -> ServiceSpec {
    ServiceSpec::new("tier1-trace-serve", TopologySpec::Hypercube { n: 4 })
        .arrivals(ArrivalSpec::poisson(12.0))
        .policy(AdmissionPolicy::QueueWithTimeout {
            max_wait_rounds: 3,
            capacity: 8,
        })
        .rounds(60)
        .window_rounds(20)
        .seed(0xABCD)
}

fn render(journals: &[TraceJournal]) -> String {
    let mut out = String::new();
    for j in journals {
        j.render_jsonl_into(&mut out);
    }
    out
}

#[test]
fn scenario_journals_are_byte_identical_across_worker_counts() {
    let scenario = monte_carlo_scenario();
    let (report_1, journals_1) = run_scenario_traced(&scenario, 1, 1 << 16);
    let bytes_1 = render(&journals_1);
    assert!(!bytes_1.is_empty());
    for threads in [2, 4, 8] {
        let (report_n, journals_n) = run_scenario_traced(&scenario, threads, 1 << 16);
        assert_eq!(report_1, report_n, "reports diverged at {threads} threads");
        assert_eq!(
            bytes_1,
            render(&journals_n),
            "journals diverged at {threads} threads"
        );
    }
    // Tracing is an observer: the report matches the probe-free run.
    assert_eq!(report_1, run_scenario(&scenario, 2));
}

#[test]
fn scenario_journals_pass_the_invariant_audit() {
    let (report, journals) = run_scenario_traced(&monte_carlo_scenario(), 4, 1 << 16);
    let audit = audit_journals(&journals).expect("journals replay clean");
    assert_eq!(audit.established, report.total_established);
    assert_eq!(audit.blocked, report.total_blocked);
    assert_eq!(journals.len(), report.replications);
}

#[test]
fn service_journal_is_deterministic_and_audits_clean() {
    let spec = service_cell();
    let (report_a, journal_a) = run_service_traced(&spec, 0, 1 << 18);
    let (report_b, journal_b) = run_service_traced(&spec, 0, 1 << 18);
    assert_eq!(report_a, report_b);
    assert_eq!(journal_a.render_jsonl(), journal_b.render_jsonl());
    assert_eq!(report_a, run_service(&spec), "tracing perturbed the run");
    let audit = audit_journals(std::slice::from_ref(&journal_a)).expect("journal replays clean");
    assert_eq!(audit.rounds_checked, 60);
}
