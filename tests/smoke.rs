//! Tier-1 smoke guard: the paper's Example 3 invariants, kept fast so they
//! run on every PR even when heavier suites are filtered out.
//!
//! `G_{15,3}` (Example 3, `Construct_BASE(15, 3)`) must keep max degree 6 —
//! exactly Lemma 1's `⌈(n−m)/λ_m⌉ + m`, inside Theorem 5's k = 2 bound,
//! with Theorem 7's general `(2k−1)·⌈(n−k)^(1/k)⌉` holding at k = 3 —
//! and broadcast from any source in exactly `log2 N` rounds.

use sparse_hypercube::core::bounds::{lemma1_upper_bound, thm5_upper_bound, thm7_upper_bound};
use sparse_hypercube::labeling::best_labeling;
use sparse_hypercube::prelude::*;

#[test]
fn example3_degree_is_six_and_obeys_degree_formulas() {
    let g = SparseHypercube::construct_base(15, 3);
    assert_eq!(g.max_degree(), 6, "Example 3: Δ(G_{{15,3}}) = 6");
    // Lemma 1 is tight here: ⌈(15−3)/λ_3⌉ + 3 with λ_3 = 4 labels.
    let lambda = best_labeling(3).num_labels();
    assert_eq!(lambda, 4);
    assert_eq!(lemma1_upper_bound(15, 3, lambda), 6);
    // Theorem 5's k = 2 bound dominates: 2·⌈√(2n+4)⌉ − 4 = 8.
    assert_eq!(thm5_upper_bound(15), 8);
    assert!((g.max_degree() as u64) <= thm5_upper_bound(15));
    // And the general k ≥ 3 formula (2k−1)·⌈(n−k)^(1/k)⌉ stays sane.
    assert_eq!(thm7_upper_bound(3, 15), 5 * 3);
    // The whole point of the construction: far sparser than Q_15 itself.
    assert!(g.max_degree() < 15);
}

#[test]
fn example3_broadcasts_in_log2_n_rounds() {
    let g = SparseHypercube::construct_base(15, 3);
    let n = 15usize; // log2 |V| = log2 2^15
    for source in [0u64, 1, 0b101, (1 << 15) - 1] {
        let schedule = broadcast_scheme(&g, source);
        let report = verify_minimum_time(&g, &schedule, 2)
            .unwrap_or_else(|e| panic!("source {source}: {e}"));
        assert_eq!(report.rounds, n, "source {source}: minimum-time rounds");
        assert!(report.is_minimum_time());
    }
}

#[test]
fn smallest_interesting_instance_stays_sane() {
    // G_{4,2} from Example 4: cheap enough to run everywhere, catches
    // regressions in construct → schedule → verify wiring instantly.
    let g = SparseHypercube::construct_base(4, 2);
    let schedule = broadcast_scheme(&g, 0);
    let report = verify_minimum_time(&g, &schedule, 2).expect("valid schedule");
    assert_eq!(report.rounds, 4);
    assert_eq!(report.total_calls as u64, g.num_vertices() - 1);
}
